//! Design-space exploration over the paper's benchmark profiles.
//!
//! For each selected benchmark the run builds an [`ExploreSpace`], runs
//! the archive-guided Pareto search (bit-identical for every
//! `QPD_THREADS`), writes an `EXPLORE_<benchmark>.json` checkpoint after
//! every round, and prints a summary table: archive size, Pareto-front
//! size, front spread (mean finite crowding distance), yield-cache hit
//! counts, the aggregate stage-cache hit rate (placement, bus,
//! frequency, routing, and yield stages together), and where the
//! paper's `eff-full` configuration landed — on the front, or dominated
//! by which front point.
//!
//! Usage:
//!   explore_run [--quick] [--check] [--seed N] [--rounds N] [--walks N]
//!               [--steps N] [--out-dir DIR] [--resume FILE] [--overlay]
//!               [--adaptive] [--screen N] [--epsilon X]
//!               [--acceptance scalarized|dominance] [--no-recombine]
//!               [--fine-recombine] [--archive-cap N] [--max-seconds S]
//!               [--hardware fixed|tunable|heavyhex|all] [--hit-rates]
//!               [--no-warm-start] [--warm-start FILE]
//!               [--shard I/N] [names...]
//!   explore_run --merge [--out-dir DIR] [--check] [--archive-cap N]
//!               shard1.json shard2.json ...
//!
//! `--hardware` picks the hardware family the candidates design for;
//! `all` makes the family a search knob (walks spread across families
//! and a dedicated move flips it), producing a cross-family front.
//! `--hit-rates` records the per-stage cache hit counters in the
//! checkpoint (display-only; upgrades its schema tag to v3). The
//! counters describe the run's *actual* cache traffic, which depends on
//! scheduling: two workers first-missing one key split a (hit, miss)
//! pair differently than one worker visiting it twice. The search state
//! stays bit-identical for every `QPD_THREADS`; only this block is
//! byte-stable at a fixed thread count — which is why it is
//! display-only and never parsed back into state.
//!
//! Alongside every checkpoint the run writes
//! `EXPLORE_<benchmark>_caches.json`, a sidecar with the routing and
//! yield stage-cache entries (see [`qpd_explore::sidecar`]); `--resume`
//! loads the sidecar sitting next to the checkpoint (when present) so
//! the resumed run starts warm, logging a one-line notice with the
//! entries restored per stage. `--no-warm-start` skips the load (cold
//! resume — useful when bisecting cache-related behavior, and the only
//! effect is recomputation: stages are pure functions of their content
//! keys, so warm caches can never change results). `--warm-start FILE`
//! additionally loads an explicit sidecar file before the first round —
//! any run's sidecar works (warm entries can never change results),
//! which is how `shard_sweep` reuses one hardware family's routing work
//! for the next.
//!
//! `--shard I/N` runs only the walks `w ≡ I (mod N)` of an
//! **independent-walk** run, with their unchanged `(seed, walk, round)`
//! RNG streams, and writes the shard-tagged checkpoint
//! `EXPLORE_<benchmark>_shardIofN.json` (plus its own cache sidecar).
//! Sharding requires a config whose walks never observe each other
//! (scalarized acceptance, no recombination, no archive cap — see
//! `ExploreConfig::shardable`); `--shard` defaults `--acceptance
//! scalarized --no-recombine` for you, and explicitly conflicting flags
//! are rejected. N shard processes over disjoint indices cover the
//! whole run; `--merge` then reassembles the exact single-process
//! checkpoint.
//!
//! `--merge shard1.json ... shardN.json` merges a complete set of
//! shard-tagged checkpoints of one run into the whole-run
//! `EXPLORE_<benchmark>.json`, byte-identical to what the
//! single-process run writes, in any input order (entries re-sort on
//! their recorded provenance). With `--archive-cap N` the merged
//! archive is additionally re-pruned to `N` points by the engine's
//! ε-grid + crowding rule (the result then differs from the uncapped
//! single run, deterministically, and records the cap in its config).
//!
//! `--fine-recombine` splits the frequency-strategy knob into its own
//! recombination exchange block (an extra RNG draw per exchanging
//! pair). The flag is recorded in the checkpoint — it changes the
//! exchange streams, so it cannot be combined with `--resume`.
//!
//! `--archive-cap N` bounds the Pareto archive: at every round barrier
//! the archive is pruned to `N` points by ε-grid occupancy and crowding
//! distance (front points kept first); `0` keeps every point.
//!
//! `--quick` shrinks every budget for smoke runs; `--check` additionally
//! asserts the smoke invariants (non-empty front, round-tripping
//! checkpoint, eff-full evaluated) and exits non-zero on violation.
//! `--adaptive` turns on 4x screening (`--screen N` picks the divisor
//! explicitly), the budget shape that makes `qft_16` tractable.
//! `--overlay` additionally writes `EXPLORE_<benchmark>_front.svg`, the
//! Figure-10 style overlay of the explored archive and its front.
//! `--max-seconds S` stops scheduling new rounds once the wall clock
//! passes `S` seconds for a run (the state so far is checkpointed and
//! reported; CI uses this to bound the qft_16 smoke job).
//! `--resume FILE` loads a checkpoint — schema v1 files are migrated to
//! v2 in memory, keeping their scalarized-era behavior; shard-tagged
//! files resume as that shard — and continues that single run to its
//! configured round budget; only `--rounds` and
//! `--overlay`/`--max-seconds` may be combined with it, since the
//! checkpoint's config governs the deterministic walk streams.
//!
//! Every usage error (unknown flag, conflicting flags, unreadable or
//! invalid checkpoint, unknown benchmark) is reported as a one-line
//! `error: ...` on stderr with exit code 2, **before** any run output
//! or filesystem side effect.

use std::path::{Path, PathBuf};
use std::time::Instant;

use qpd_core::{crowding_distances, dominates_nd};
use qpd_eval::plot::{svg_front_overlay, OverlayPoint};
use qpd_explore::sidecar::{self, SidecarLoad};
use qpd_explore::{
    merge_checkpoints, AcceptanceMode, Checkpoint, ExploreConfig, ExploreSpace, ExploreState,
    Explorer, HardwareSweep, ShardSpec, ShardState, StageHitRate,
};

/// Reports a usage error and exits with status 2. Called only before
/// any run output or filesystem side effect, so a bad invocation never
/// leaves partial artifacts or interleaves with progress noise.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

struct Args {
    quick: bool,
    check: bool,
    seed: Option<u64>,
    rounds: Option<usize>,
    walks: Option<usize>,
    steps: Option<usize>,
    out_dir: PathBuf,
    resume: Option<PathBuf>,
    overlay: bool,
    screen: Option<u64>,
    epsilon: Option<f64>,
    acceptance: Option<AcceptanceMode>,
    no_recombine: bool,
    fine_recombine: bool,
    archive_cap: Option<usize>,
    max_seconds: Option<f64>,
    hardware: Option<HardwareSweep>,
    hit_rates: bool,
    no_warm_start: bool,
    warm_start: Option<PathBuf>,
    shard: Option<ShardSpec>,
    merge: bool,
    names: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        seed: None,
        rounds: None,
        walks: None,
        steps: None,
        out_dir: PathBuf::from("."),
        resume: None,
        overlay: false,
        screen: None,
        epsilon: None,
        acceptance: None,
        no_recombine: false,
        fine_recombine: false,
        archive_cap: None,
        max_seconds: None,
        hardware: None,
        hit_rates: false,
        no_warm_start: false,
        warm_start: None,
        shard: None,
        merge: false,
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| fail(format!("{flag} needs a value")));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--seed" => {
                args.seed =
                    Some(value("--seed").parse().unwrap_or_else(|_| fail("--seed needs a number")))
            }
            "--rounds" => {
                args.rounds = Some(
                    value("--rounds").parse().unwrap_or_else(|_| fail("--rounds needs a number")),
                )
            }
            "--walks" => {
                args.walks = Some(
                    value("--walks").parse().unwrap_or_else(|_| fail("--walks needs a number")),
                )
            }
            "--steps" => {
                args.steps = Some(
                    value("--steps").parse().unwrap_or_else(|_| fail("--steps needs a number")),
                )
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")),
            "--resume" => args.resume = Some(PathBuf::from(value("--resume"))),
            "--overlay" => args.overlay = true,
            "--adaptive" => args.screen = args.screen.or(Some(4)),
            "--screen" => {
                args.screen = Some(
                    value("--screen").parse().unwrap_or_else(|_| fail("--screen needs a number")),
                )
            }
            "--epsilon" => {
                args.epsilon = Some(
                    value("--epsilon").parse().unwrap_or_else(|_| fail("--epsilon needs a number")),
                )
            }
            "--acceptance" => {
                let tag = value("--acceptance");
                args.acceptance = Some(
                    AcceptanceMode::from_str_tag(&tag)
                        .unwrap_or_else(|| fail(format!("unknown acceptance mode {tag:?}"))),
                );
            }
            "--no-recombine" => args.no_recombine = true,
            "--fine-recombine" => args.fine_recombine = true,
            "--no-warm-start" => args.no_warm_start = true,
            "--warm-start" => args.warm_start = Some(PathBuf::from(value("--warm-start"))),
            "--archive-cap" => {
                args.archive_cap = Some(
                    value("--archive-cap")
                        .parse()
                        .unwrap_or_else(|_| fail("--archive-cap needs a number")),
                )
            }
            "--max-seconds" => {
                args.max_seconds = Some(
                    value("--max-seconds")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-seconds needs a number")),
                )
            }
            "--hardware" => {
                let tag = value("--hardware");
                args.hardware = Some(
                    HardwareSweep::parse(&tag)
                        .unwrap_or_else(|| fail(format!("unknown hardware family {tag:?}"))),
                );
            }
            "--hit-rates" => args.hit_rates = true,
            "--shard" => {
                let tag = value("--shard");
                args.shard = Some(ShardSpec::parse(&tag).unwrap_or_else(|m| fail(m)));
            }
            "--merge" => args.merge = true,
            other if !other.starts_with("--") => args.names.push(other.to_string()),
            other => fail(format!("unknown argument {other:?}")),
        }
    }
    args
}

fn config_from(args: &Args) -> ExploreConfig {
    let mut config = if args.quick { ExploreConfig::quick() } else { ExploreConfig::default() };
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    if let Some(rounds) = args.rounds {
        config.rounds = rounds;
    }
    if let Some(walks) = args.walks {
        config.walks = walks;
    }
    if let Some(steps) = args.steps {
        config.steps_per_round = steps;
    }
    if let Some(screen) = args.screen {
        config.screen_divisor = screen.max(1);
    }
    if let Some(eps) = args.epsilon {
        config.epsilon = eps;
    }
    if let Some(acceptance) = args.acceptance {
        config.acceptance = acceptance;
    }
    if args.no_recombine {
        config.recombine = false;
    }
    if args.fine_recombine {
        config.fine_recombine = true;
    }
    if let Some(cap) = args.archive_cap {
        config.archive_cap = (cap > 0).then_some(cap);
    }
    if let Some(hardware) = args.hardware {
        config.hardware = hardware;
    }
    // Shard mode needs the independent-walk config shape: flags the
    // user left at their defaults are defaulted shard-compatibly, and
    // explicitly conflicting flags are rejected in `validate_shard`.
    if args.shard.is_some() {
        if args.acceptance.is_none() {
            config.acceptance = AcceptanceMode::Scalarized;
        }
        config.recombine = false;
    }
    config
}

/// Fails fast (before any output) when a benchmark name is unknown.
fn require_benchmark(name: &str) {
    if qpd_benchmarks::build(name).is_err() {
        fail(format!("unknown benchmark `{name}`"));
    }
}

/// The sidecar/checkpoint label of one shard of a run:
/// `<name>_shardIofN`, matching `Checkpoint::shard_file_name`.
fn shard_label(name: &str, spec: ShardSpec) -> String {
    format!("{name}_shard{}of{}", spec.index, spec.of)
}

/// Where `eff-full` landed: `Ok(true)` on the front, `Ok(false)` absent
/// from the archive, `Err(name)` dominated by front point `name`. In a
/// pinned-family run walk 0 starts at eff-full *on that family*, so the
/// probe follows the sweep.
fn eff_full_status(
    space: &ExploreSpace,
    state: &ExploreState,
    sweep: HardwareSweep,
) -> Result<bool, String> {
    let mut eff_full = qpd_explore::CandidateSpec::eff_full(space.full_weighted_len());
    if let HardwareSweep::Pinned(family) = sweep {
        eff_full.hardware = family;
    }
    let Some(position) = state.archive.iter().position(|e| e.spec == eff_full) else {
        return Ok(false);
    };
    let front = state.front_indices();
    if front.contains(&position) {
        return Ok(true);
    }
    let point = state.archive[position].objectives.as_maximization();
    let dominator = front
        .iter()
        .find(|&&i| dominates_nd(&state.archive[i].objectives.as_maximization(), &point))
        .map(|&i| state.archive[i].arch_name.clone())
        .unwrap_or_else(|| "front".into());
    Err(dominator)
}

/// Mean finite NSGA-II crowding distance over the front — the spread
/// figure in the summary table (0 when every point is a boundary).
fn front_spread(state: &ExploreState, front: &[usize]) -> f64 {
    let pts: Vec<Vec<f64>> =
        front.iter().map(|&i| state.archive[i].objectives.as_maximization()).collect();
    let finite: Vec<f64> = crowding_distances(&pts).into_iter().filter(|d| d.is_finite()).collect();
    if finite.is_empty() {
        0.0
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

/// Projects the archive onto the Figure-10 overlay axes: performance
/// normalized to the best (smallest) post-mapping gate count on record.
fn overlay_points(state: &ExploreState, front: &[usize]) -> Vec<OverlayPoint> {
    let best_gates =
        state.archive.iter().map(|e| e.objectives.total_gates).min().unwrap_or(1).max(1);
    state
        .archive
        .iter()
        .enumerate()
        .map(|(i, e)| OverlayPoint {
            arch: e.arch_name.clone(),
            perf: best_gates as f64 / e.objectives.total_gates as f64,
            yield_rate: e.objectives.yield_rate(),
            on_front: front.contains(&i),
        })
        .collect()
}

struct RunReport {
    benchmark: String,
    evaluations: u64,
    archive: usize,
    front: usize,
    spread: f64,
    yield_hits: u64,
    /// Aggregate stage-cache hit rate across every cached stage of the
    /// cascade (placement, bus, frequency, routing, yield).
    stage_hit_rate: f64,
    /// Distinct stage keys computed across the cascade. Unlike the
    /// hit/miss tallies this is deterministic: duplicate computations
    /// from scheduling races dedupe, so the figure is identical at
    /// every `QPD_THREADS`.
    stage_unique: u64,
    /// `None` for a shard that does not own walk 0: eff-full is walk
    /// 0's starting point, so only its shard (or a whole run) can
    /// report on it.
    eff_full: Option<Result<bool, String>>,
    checkpoint: PathBuf,
    overlay: Option<PathBuf>,
}

struct RunOptions {
    overlay: bool,
    max_seconds: Option<f64>,
    /// Record display-only per-stage cache counters in the checkpoint
    /// (upgrades its schema tag to v3).
    hit_rates: bool,
    /// Directory to load a `EXPLORE_<run>_caches.json` sidecar from
    /// before the first resumed round.
    warm_from: Option<PathBuf>,
    /// An explicit sidecar file to warm-load before the first round
    /// (`--warm-start`) — on top of `warm_from`, and valid for fresh
    /// runs too.
    warm_file: Option<PathBuf>,
}

/// Warm-loads a cache sidecar, logging one line saying what happened —
/// entries restored per stage, or why the file was skipped. A missing
/// sidecar is the normal cold-start case and stays silent.
fn warm_load_sidecar(path: &Path, caches: &qpd_explore::StageCaches) {
    match sidecar::load(path, caches) {
        SidecarLoad::Missing => {}
        SidecarLoad::Ignored(why) => {
            eprintln!("ignoring cache sidecar {} ({why})", path.display());
        }
        SidecarLoad::Loaded { routes, yields } => {
            eprintln!(
                "warm start: restored {routes} routing + {yields} yield cache entries from {}",
                path.display()
            );
        }
    }
}

/// Builds the engine for one run, applying the warm-start options.
fn build_explorer(
    name: &str,
    label: &str,
    config: ExploreConfig,
    options: &RunOptions,
) -> Explorer {
    let circuit = qpd_benchmarks::build(name).expect("known benchmark");
    let space = ExploreSpace::new(circuit, config.max_aux);
    let explorer = Explorer::new(space, config).expect("baseline design");
    if let Some(dir) = &options.warm_from {
        warm_load_sidecar(&dir.join(sidecar::file_name(label)), explorer.caches());
    }
    if let Some(file) = &options.warm_file {
        warm_load_sidecar(file, explorer.caches());
    }
    explorer
}

/// Assembles the summary row after a run (whole or shard). `overlay`
/// carries the `(title, path)` of the front SVG to write, when asked.
fn report(
    benchmark: String,
    explorer: &Explorer,
    state: &ExploreState,
    eff_full: Option<Result<bool, String>>,
    checkpoint: PathBuf,
    overlay: Option<(String, PathBuf)>,
) -> RunReport {
    // The front is an O(archive^2) dominance sweep: compute it once and
    // share it between the report, the spread figure, and the overlay.
    let front = state.front_indices();
    let overlay = overlay.map(|(title, path)| {
        std::fs::write(&path, svg_front_overlay(&title, &overlay_points(state, &front)))
            .expect("write overlay");
        path
    });
    let cache = explorer.caches();
    let (stage_hits, stage_lookups, stage_unique) =
        explorer.stage_stats().iter().fold((0u64, 0u64, 0u64), |(h, t, u), s| {
            (h + s.hits, t + s.hits + s.misses, u + s.unique_misses)
        });
    RunReport {
        benchmark,
        evaluations: cache.yields.hits() + cache.yields.misses(),
        archive: state.archive.len(),
        front: front.len(),
        spread: front_spread(state, &front),
        yield_hits: cache.yields.hits(),
        stage_hit_rate: if stage_lookups == 0 {
            0.0
        } else {
            stage_hits as f64 / stage_lookups as f64
        },
        stage_unique,
        eff_full,
        checkpoint,
        overlay,
    }
}

fn run_one(
    name: &str,
    config: ExploreConfig,
    out_dir: &Path,
    resume_state: Option<ExploreState>,
    options: &RunOptions,
) -> RunReport {
    std::fs::create_dir_all(out_dir).expect("create output directory");
    let start = Instant::now();
    let explorer = build_explorer(name, name, config, options);
    let mut state = match resume_state {
        Some(state) => state,
        None => explorer.initial_state().expect("initial evaluations"),
    };
    let snapshot = |state: &ExploreState| Checkpoint {
        run: name.to_string(),
        config,
        state: state.clone(),
        stage_hit_rates: if options.hit_rates {
            StageHitRate::from_stats(&explorer.stage_stats())
        } else {
            Vec::new()
        },
        shard: None,
    };
    while state.rounds_done < config.rounds {
        if let Some(bound) = options.max_seconds {
            if state.rounds_done > 0 && start.elapsed().as_secs_f64() > bound {
                eprintln!(
                    "{name}: wall-clock bound hit after {} rounds; stopping early",
                    state.rounds_done
                );
                break;
            }
        }
        explorer.advance_round(&mut state).expect("round");
        // Checkpoint after every round: a killed run resumes from here,
        // and the cache sidecar lets it resume *warm*.
        snapshot(&state).write(out_dir).expect("write checkpoint");
        std::fs::write(out_dir.join(sidecar::file_name(name)), sidecar::render(explorer.caches()))
            .expect("write cache sidecar");
    }
    // Always (re)write the final state: never report a stale file that
    // happened to be sitting in the output directory.
    let checkpoint_path = snapshot(&state).write(out_dir).expect("write checkpoint");
    std::fs::write(out_dir.join(sidecar::file_name(name)), sidecar::render(explorer.caches()))
        .expect("write cache sidecar");
    let eff_full = Some(eff_full_status(explorer.space(), &state, config.hardware));
    let overlay = options
        .overlay
        .then(|| (name.to_string(), out_dir.join(format!("EXPLORE_{name}_front.svg"))));
    report(name.to_string(), &explorer, &state, eff_full, checkpoint_path, overlay)
}

/// The shard counterpart of [`run_one`]: advances only the walks the
/// shard owns and writes the shard-tagged checkpoint + sidecar after
/// every round.
fn run_one_shard(
    name: &str,
    spec: ShardSpec,
    config: ExploreConfig,
    out_dir: &Path,
    resume_state: Option<ShardState>,
    options: &RunOptions,
) -> RunReport {
    std::fs::create_dir_all(out_dir).expect("create output directory");
    let start = Instant::now();
    let label = shard_label(name, spec);
    let explorer = build_explorer(name, &label, config, options);
    let mut shard = match resume_state {
        Some(state) => state,
        None => explorer.initial_shard_state(spec).expect("initial evaluations"),
    };
    let snapshot = |shard: &ShardState| {
        Checkpoint::from_shard(
            name,
            config,
            shard,
            if options.hit_rates {
                StageHitRate::from_stats(&explorer.stage_stats())
            } else {
                Vec::new()
            },
        )
    };
    while shard.state.rounds_done < config.rounds {
        if let Some(bound) = options.max_seconds {
            if shard.state.rounds_done > 0 && start.elapsed().as_secs_f64() > bound {
                eprintln!(
                    "{name} [{spec}]: wall-clock bound hit after {} rounds; stopping early",
                    shard.state.rounds_done
                );
                break;
            }
        }
        explorer.advance_shard_round(&mut shard).expect("round");
        snapshot(&shard).write(out_dir).expect("write checkpoint");
        std::fs::write(
            out_dir.join(sidecar::file_name(&label)),
            sidecar::render(explorer.caches()),
        )
        .expect("write cache sidecar");
    }
    let checkpoint_path = snapshot(&shard).write(out_dir).expect("write checkpoint");
    std::fs::write(out_dir.join(sidecar::file_name(&label)), sidecar::render(explorer.caches()))
        .expect("write cache sidecar");
    // eff-full is walk 0's starting point; only its shard can see it.
    let eff_full =
        (spec.index == 0).then(|| eff_full_status(explorer.space(), &shard.state, config.hardware));
    let overlay = options
        .overlay
        .then(|| (label.clone(), out_dir.join(format!("EXPLORE_{label}_front.svg"))));
    report(format!("{name} [{spec}]"), &explorer, &shard.state, eff_full, checkpoint_path, overlay)
}

/// `--merge`: validates, merges, optionally re-prunes, writes, reports.
fn run_merge(args: &Args) {
    // Validation first: merge mode takes checkpoint files plus
    // --out-dir/--check/--archive-cap only. Everything else would
    // silently contradict the shards' recorded configs.
    if args.resume.is_some() || args.shard.is_some() {
        fail("--merge cannot be combined with --resume or --shard");
    }
    if args.quick
        || args.seed.is_some()
        || args.rounds.is_some()
        || args.walks.is_some()
        || args.steps.is_some()
        || args.screen.is_some()
        || args.epsilon.is_some()
        || args.acceptance.is_some()
        || args.no_recombine
        || args.fine_recombine
        || args.max_seconds.is_some()
        || args.hardware.is_some()
        || args.hit_rates
        || args.overlay
        || args.no_warm_start
        || args.warm_start.is_some()
    {
        fail(
            "--merge takes shard files plus --out-dir/--check/--archive-cap only \
              (the shards' recorded config governs everything else)",
        );
    }
    if args.names.is_empty() {
        fail("--merge needs at least one shard checkpoint file");
    }
    let mut shards = Vec::with_capacity(args.names.len());
    for file in &args.names {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(format!("cannot read {file}: {e}")));
        shards.push(Checkpoint::parse(&text).unwrap_or_else(|e| fail(format!("{file}: {e}"))));
    }
    let mut merged = merge_checkpoints(&shards).unwrap_or_else(|e| fail(e));
    if let Some(cap) = args.archive_cap.filter(|&cap| cap > 0) {
        // Re-pruning needs the run's objective normalization, which is
        // anchored on the benchmark's zero-bus baseline design.
        require_benchmark(&merged.run);
        let config = ExploreConfig { archive_cap: Some(cap), ..merged.config };
        let circuit = qpd_benchmarks::build(&merged.run).expect("known benchmark");
        let space = ExploreSpace::new(circuit, config.max_aux);
        let explorer = Explorer::new(space, config).expect("baseline design");
        let before = merged.state.archive.len();
        explorer.prune_archive_to(&mut merged.state, cap);
        merged.config = config;
        eprintln!(
            "re-pruned merged archive {before} -> {} (cap {cap})",
            merged.state.archive.len()
        );
    }
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let path = merged.write(&args.out_dir).expect("write merged checkpoint");
    let front = merged.state.front_indices().len();
    println!(
        "merged {} shard(s) of `{}`: rounds {}, archive {}, front {} -> {}",
        shards.len(),
        merged.run,
        merged.state.rounds_done,
        merged.state.archive.len(),
        front,
        path.display()
    );
    if args.check {
        let mut failures = Vec::new();
        if front == 0 {
            failures.push(format!("{}: empty merged Pareto front", merged.run));
        }
        let text = std::fs::read_to_string(&path).expect("checkpoint readable");
        match Checkpoint::parse(&text) {
            Ok(parsed) if parsed.render() != text => {
                failures.push(format!("{}: merged checkpoint not a render fixpoint", merged.run));
            }
            Ok(_) => {}
            Err(e) => failures.push(format!("{}: merged checkpoint unparseable: {e}", merged.run)),
        }
        if failures.is_empty() {
            println!("check: merge invariants hold");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// `--resume`: validates everything (flags, file, config, benchmark)
/// before printing anything, then continues the run.
fn run_resume(args: &Args, options: &mut RunOptions) {
    let path = args.resume.as_ref().expect("resume mode");
    // Flag conflicts are reported before the checkpoint is even read:
    // the checkpoint's config governs the walk streams, so only the
    // round budget may be overridden (extending a finished run is fine —
    // later rounds get fresh `(seed, walk, round)` streams); every other
    // override would silently change what the original run was.
    if args.walks.is_some()
        || args.steps.is_some()
        || args.seed.is_some()
        || args.quick
        || args.screen.is_some()
        || args.epsilon.is_some()
        || args.acceptance.is_some()
        || args.no_recombine
        || args.fine_recombine
        || args.archive_cap.is_some()
        || args.hardware.is_some()
        || args.shard.is_some()
    {
        fail("--resume uses the checkpoint's config; only --rounds may be combined with it");
    }
    if !args.names.is_empty() {
        fail("--resume resumes one checkpointed run; benchmark names cannot be combined with it");
    }
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
    let (mut checkpoint, version) = Checkpoint::parse_versioned(&text)
        .unwrap_or_else(|e| fail(format!("{}: {e}", path.display())));
    require_benchmark(&checkpoint.run);
    // Validation done — output and side effects may start.
    if version == 1 {
        eprintln!(
            "migrating {} from schema v{version}: continuing with {} acceptance, \
             no recombination, no screening (the run's original semantics)",
            path.display(),
            checkpoint.config.acceptance.as_str()
        );
    }
    if let Some(rounds) = args.rounds {
        checkpoint.config.rounds = rounds;
    }
    // A sidecar next to the checkpoint warms the resumed caches
    // (unless the operator asked for a cold resume).
    if !args.no_warm_start {
        options.warm_from = path.parent().map(|p| p.to_path_buf());
    }
    let run = checkpoint.run.clone();
    let report = match checkpoint.to_shard_state() {
        Some(shard) => {
            eprintln!(
                "resuming {run} [{}] at round {}/{}",
                shard.spec, shard.state.rounds_done, checkpoint.config.rounds
            );
            run_one_shard(&run, shard.spec, checkpoint.config, &args.out_dir, Some(shard), options)
        }
        None => {
            eprintln!(
                "resuming {run} at round {}/{}",
                checkpoint.state.rounds_done, checkpoint.config.rounds
            );
            run_one(&run, checkpoint.config, &args.out_dir, Some(checkpoint.state), options)
        }
    };
    print_table(std::slice::from_ref(&report));
    if args.check {
        check(std::slice::from_ref(&report));
    }
}

fn main() {
    let args = parse_args();
    if args.merge {
        run_merge(&args);
        return;
    }
    let mut options = RunOptions {
        overlay: args.overlay,
        max_seconds: args.max_seconds,
        hit_rates: args.hit_rates,
        warm_from: None,
        warm_file: args.warm_start.clone(),
    };
    if args.resume.is_some() {
        run_resume(&args, &mut options);
        return;
    }

    let config = config_from(&args);
    let names: Vec<String> = if args.names.is_empty() {
        if args.quick {
            vec!["sym6_145".to_string()]
        } else {
            // The paper profiles small enough to search end-to-end in
            // one sitting; pass names explicitly for the rest.
            vec!["sym6_145".to_string(), "UCCSD_ansatz_8".to_string(), "z4_268".to_string()]
        }
    } else {
        args.names.clone()
    };
    // Validate every name (and the shard shape) before running — or
    // writing — anything.
    for name in &names {
        require_benchmark(name);
    }
    if let Some(spec) = args.shard {
        if args.overlay {
            fail("--overlay plots a whole run; apply it after --merge instead of per shard");
        }
        if let Err(why) = config.shardable() {
            fail(format!("--shard needs an independent-walk config: {why}"));
        }
        if spec.walk_ids(config.walks).is_empty() {
            fail(format!("shard {spec} of a {}-walk run owns no walks", config.walks));
        }
    }

    let mut reports = Vec::new();
    for name in &names {
        match args.shard {
            Some(spec) => {
                eprint!("exploring {name} [{spec}] ... ");
                let start = std::time::Instant::now();
                let report = run_one_shard(name, spec, config, &args.out_dir, None, &options);
                eprintln!("done ({:.1?})", start.elapsed());
                reports.push(report);
            }
            None => {
                eprint!("exploring {name} ... ");
                let start = std::time::Instant::now();
                let report = run_one(name, config, &args.out_dir, None, &options);
                eprintln!("done ({:.1?})", start.elapsed());
                reports.push(report);
            }
        }
    }
    print_table(&reports);

    if args.check {
        check(&reports);
    }
}

fn print_table(reports: &[RunReport]) {
    println!(
        "\n{:<16} {:>6} {:>8} {:>6} {:>7} {:>10} {:>9} {:>6}  {:<26} checkpoint",
        "benchmark",
        "evals",
        "archive",
        "front",
        "spread",
        "cache-hit",
        "stage-hit",
        "uniq",
        "eff-full"
    );
    for r in reports {
        let eff = match &r.eff_full {
            None => "n/a (shard)".to_string(),
            Some(Ok(true)) => "on front".to_string(),
            Some(Ok(false)) => "NOT EVALUATED".to_string(),
            Some(Err(by)) => format!("dominated by {by}"),
        };
        println!(
            "{:<16} {:>6} {:>8} {:>6} {:>7.3} {:>10} {:>8.1}% {:>6}  {:<26} {}",
            r.benchmark,
            r.evaluations,
            r.archive,
            r.front,
            r.spread,
            r.yield_hits,
            100.0 * r.stage_hit_rate,
            r.stage_unique,
            eff,
            r.checkpoint.display()
        );
        if let Some(overlay) = &r.overlay {
            println!("{:<16} overlay: {}", "", overlay.display());
        }
    }
}

/// Smoke assertions for CI: non-empty front, eff-full evaluated (where
/// the run could see it), a checkpoint that parses back to the exact
/// same bytes, and (when requested) an overlay that was actually
/// written.
fn check(reports: &[RunReport]) {
    let mut failures = Vec::new();
    for r in reports {
        if r.front == 0 {
            failures.push(format!("{}: empty Pareto front", r.benchmark));
        }
        if matches!(r.eff_full, Some(Ok(false))) {
            failures.push(format!("{}: eff-full was never evaluated", r.benchmark));
        }
        let text = std::fs::read_to_string(&r.checkpoint).expect("checkpoint readable");
        match Checkpoint::parse(&text) {
            Ok(parsed) => {
                if parsed.render() != text {
                    failures.push(format!("{}: checkpoint not a render fixpoint", r.benchmark));
                }
            }
            Err(e) => failures.push(format!("{}: checkpoint unparseable: {e}", r.benchmark)),
        }
        if let Some(overlay) = &r.overlay {
            match std::fs::read_to_string(overlay) {
                Ok(svg) if svg.contains("</svg>") => {}
                _ => failures.push(format!("{}: overlay SVG missing or truncated", r.benchmark)),
            }
        }
    }
    if failures.is_empty() {
        println!("\ncheck: all smoke invariants hold");
    } else {
        for f in &failures {
            eprintln!("check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
