//! Computes the quantitative claims of §5.3 and §5.4 across all twelve
//! benchmarks and prints them against the paper's reported numbers.
//!
//! Usage:
//!   cargo run --release -p qpd-eval --bin table_summary [--quick] [names...]

use qpd_eval::runner::{run_benchmark, EvalSettings};
use qpd_eval::summary::{summarize, summary_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trials: Option<u64> = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let names: Vec<String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--trials" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .cloned()
            .collect()
    };
    let mut settings = if quick { EvalSettings::quick() } else { EvalSettings::default() };
    if let Some(t) = trials {
        settings.yield_trials = t;
    }
    let yield_floor = 0.5 / settings.yield_trials as f64;

    let benchmarks: Vec<String> = if names.is_empty() {
        qpd_benchmarks::ALL.iter().map(|s| s.name.to_string()).collect()
    } else {
        names
    };

    let mut summaries = Vec::new();
    for name in &benchmarks {
        eprint!("running {name} ... ");
        let start = std::time::Instant::now();
        match run_benchmark(name, &settings) {
            Ok(run) => {
                summaries.push(summarize(&run, yield_floor));
                eprintln!("done ({:.1?})", start.elapsed());
            }
            Err(e) => {
                eprintln!("failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!();
    println!("Columns: perf(K=0) = normalized performance of the most simplified");
    println!("eff-full design (baseline (1) = 1.0); yld/bN = yield gain over IBM");
    println!("baseline (N); yld-lay = eff-layout-only (2-qubit buses) yield gain");
    println!("over baseline (2); yld-freq = eff-full over eff-5-freq at equal bus");
    println!("count; pareto = every IBM baseline Pareto-dominated by eff-full.");
    println!();
    print!("{}", summary_table(&summaries));
}
