//! Fleet driver: a benchmark-family × hardware-family sweep as one
//! command, each run sharded across OS processes and merged back.
//!
//! For every requested benchmark and hardware family the sweep spawns
//! `--shards N` `explore_run --shard i/N` child processes (one per
//! core by default, each pinned to one worker thread so N shards don't
//! oversubscribe the host), waits for the cohort, and merges the
//! shard-tagged checkpoints in-process into the whole-run
//! `EXPLORE_<benchmark>.json` — byte-identical to what a single
//! process would have written (see [`qpd_explore::merge`]).
//!
//! Families run in sequence and **warm-start each other**: shard `i`
//! of family `k+1` is launched with `--warm-start` pointing at shard
//! `i`'s cache sidecar from family `k`. Stage caches are content-keyed
//! (the hardware family is part of every key that depends on it), so
//! the warm entries can never change results — family-independent
//! stages (placement, bus layout, routing) simply hit instead of
//! recompute.
//!
//! Usage:
//!   shard_sweep [--shards N] [--quick] [--check] [--seed N]
//!               [--rounds N] [--walks N] [--steps N] [--out-dir DIR]
//!               [--families fixed,tunable,heavyhex] [names...]
//!
//! Output lands in `DIR/<family>/`: N shard checkpoints (plus their
//! cache sidecars) and the merged whole-run checkpoint per benchmark.
//! `--check` asserts the merge invariants (non-empty front, render
//! fixpoint) for every merged checkpoint and exits non-zero on
//! violation. All usage errors report as `error: ...` with exit code 2
//! before anything is spawned or written.

use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::Instant;

use qpd_explore::sidecar;
use qpd_explore::{merge_checkpoints, Checkpoint, HardwareSweep, ShardSpec};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

struct Args {
    shards: usize,
    quick: bool,
    check: bool,
    seed: Option<u64>,
    rounds: Option<usize>,
    walks: Option<usize>,
    steps: Option<usize>,
    out_dir: PathBuf,
    families: Vec<String>,
    names: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        quick: false,
        check: false,
        seed: None,
        rounds: None,
        walks: None,
        steps: None,
        out_dir: PathBuf::from("."),
        families: vec!["fixed".into(), "tunable".into(), "heavyhex".into()],
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| fail(format!("{flag} needs a value")));
        match arg.as_str() {
            "--shards" => {
                args.shards = value("--shards")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| fail("--shards needs a positive number"))
            }
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--seed" => {
                args.seed =
                    Some(value("--seed").parse().unwrap_or_else(|_| fail("--seed needs a number")))
            }
            "--rounds" => {
                args.rounds = Some(
                    value("--rounds").parse().unwrap_or_else(|_| fail("--rounds needs a number")),
                )
            }
            "--walks" => {
                args.walks = Some(
                    value("--walks").parse().unwrap_or_else(|_| fail("--walks needs a number")),
                )
            }
            "--steps" => {
                args.steps = Some(
                    value("--steps").parse().unwrap_or_else(|_| fail("--steps needs a number")),
                )
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")),
            "--families" => {
                args.families =
                    value("--families").split(',').map(|s| s.trim().to_string()).collect()
            }
            other if !other.starts_with("--") => args.names.push(other.to_string()),
            other => fail(format!("unknown argument {other:?}")),
        }
    }
    args
}

/// The sibling `explore_run` binary — shard children are the same
/// build as the sweep driver, never whatever happens to be on `PATH`.
fn explore_run_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.pop();
    path.push(format!("explore_run{}", std::env::consts::EXE_SUFFIX));
    path
}

struct SweepRow {
    name: String,
    family: String,
    shards: usize,
    rounds: usize,
    archive: usize,
    front: usize,
    seconds: f64,
    checkpoint: PathBuf,
}

fn main() {
    let args = parse_args();
    // ---- validation: nothing spawned or written before this block ends.
    let names: Vec<String> =
        if args.names.is_empty() { vec!["sym6_145".to_string()] } else { args.names.clone() };
    for name in &names {
        if qpd_benchmarks::build(name).is_err() {
            fail(format!("unknown benchmark `{name}`"));
        }
    }
    if args.families.is_empty() {
        fail("--families needs at least one family");
    }
    for family in &args.families {
        if HardwareSweep::parse(family).is_none() {
            fail(format!("unknown hardware family {family:?}"));
        }
    }
    let bin = explore_run_bin();
    if !bin.exists() {
        fail(format!("explore_run binary not found next to shard_sweep ({})", bin.display()));
    }
    // A shard owning zero walks is a usage error in explore_run; clamp
    // the fan-out to the walk count instead of tripping it.
    let walks = args.walks.unwrap_or_else(|| {
        if args.quick {
            qpd_explore::ExploreConfig::quick().walks
        } else {
            qpd_explore::ExploreConfig::default().walks
        }
    });
    let shards = args.shards.min(walks).max(1);
    if shards < args.shards {
        eprintln!("note: clamping --shards {} to the {walks}-walk budget", args.shards);
    }

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for name in &names {
        for (fi, family) in args.families.iter().enumerate() {
            let out = args.out_dir.join(family);
            std::fs::create_dir_all(&out).expect("create output directory");
            let start = Instant::now();
            eprintln!("sweep: {name} on {family}, {shards} shard process(es)");
            let mut children: Vec<(usize, Child)> = Vec::new();
            for index in 0..shards {
                let spec = ShardSpec { index, of: shards };
                let mut cmd = Command::new(&bin);
                cmd.arg("--shard").arg(spec.to_string());
                cmd.arg("--hardware").arg(family);
                cmd.arg("--out-dir").arg(&out);
                if args.quick {
                    cmd.arg("--quick");
                }
                if let Some(seed) = args.seed {
                    cmd.arg("--seed").arg(seed.to_string());
                }
                if let Some(rounds) = args.rounds {
                    cmd.arg("--rounds").arg(rounds.to_string());
                }
                if let Some(w) = args.walks {
                    cmd.arg("--walks").arg(w.to_string());
                }
                if let Some(steps) = args.steps {
                    cmd.arg("--steps").arg(steps.to_string());
                }
                // Cross-family warm start: this shard's sidecar from the
                // previous family. Content-keyed caches make this safe;
                // explore_run stays silently cold if the file is absent.
                if fi > 0 {
                    let prev = args.out_dir.join(&args.families[fi - 1]);
                    let label = format!("{name}_shard{index}of{shards}");
                    cmd.arg("--warm-start").arg(prev.join(sidecar::file_name(&label)));
                }
                cmd.arg(name);
                // One process per core: keep each shard on one worker
                // thread unless the operator pinned QPD_THREADS.
                if std::env::var_os("QPD_THREADS").is_none() {
                    cmd.env("QPD_THREADS", "1");
                }
                let child = cmd.spawn().unwrap_or_else(|e| {
                    fail(format!("cannot spawn {} for shard {spec}: {e}", bin.display()))
                });
                children.push((index, child));
            }
            let mut cohort_ok = true;
            for (index, mut child) in children {
                let status = child.wait().expect("wait on shard child");
                if !status.success() {
                    failures.push(format!(
                        "{name}/{family}: shard {index}/{shards} exited with {status}"
                    ));
                    cohort_ok = false;
                }
            }
            if !cohort_ok {
                continue;
            }
            // Reduce: parse the shard checkpoints and merge in-process.
            let mut checkpoints = Vec::with_capacity(shards);
            for index in 0..shards {
                let spec = ShardSpec { index, of: shards };
                let path = out.join(Checkpoint::shard_file_name(name, spec));
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    fail(format!("cannot read shard checkpoint {}: {e}", path.display()))
                });
                checkpoints.push(
                    Checkpoint::parse(&text)
                        .unwrap_or_else(|e| fail(format!("{}: {e}", path.display()))),
                );
            }
            let merged = merge_checkpoints(&checkpoints).unwrap_or_else(|e| fail(e));
            let path = merged.write(&out).expect("write merged checkpoint");
            if args.check {
                let text = std::fs::read_to_string(&path).expect("checkpoint readable");
                match Checkpoint::parse(&text) {
                    Ok(parsed) if parsed.render() != text => {
                        failures.push(format!("{name}/{family}: merged checkpoint not a fixpoint"))
                    }
                    Ok(_) => {}
                    Err(e) => failures.push(format!("{name}/{family}: merged unparseable: {e}")),
                }
                if merged.state.front_indices().is_empty() {
                    failures.push(format!("{name}/{family}: empty merged front"));
                }
            }
            rows.push(SweepRow {
                name: name.clone(),
                family: family.clone(),
                shards,
                rounds: merged.state.rounds_done,
                archive: merged.state.archive.len(),
                front: merged.state.front_indices().len(),
                seconds: start.elapsed().as_secs_f64(),
                checkpoint: path,
            });
        }
    }

    println!(
        "\n{:<16} {:<9} {:>6} {:>6} {:>8} {:>6} {:>8}  merged checkpoint",
        "benchmark", "family", "shards", "rounds", "archive", "front", "seconds"
    );
    for r in &rows {
        println!(
            "{:<16} {:<9} {:>6} {:>6} {:>8} {:>6} {:>8.1}  {}",
            r.name,
            r.family,
            r.shards,
            r.rounds,
            r.archive,
            r.front,
            r.seconds,
            r.checkpoint.display()
        );
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("sweep FAILED: {f}");
        }
        std::process::exit(1);
    }
}
