//! Perf snapshot: times the repo's hot kernels and writes a
//! machine-readable baseline (`BENCH_2.json`) seeding the perf
//! trajectory that future PRs extend.
//!
//! Kernels:
//!
//! - `freq_alloc/reference` — frequency allocation through the retained
//!   pre-overhaul path (naive serial evaluator, single-draw Box–Muller);
//! - `freq_alloc/compiled` — the same allocation on the compiled-regions
//!   SoA path with pooled candidate evaluation;
//! - `yield_sim/serial` and `yield_sim/pooled` — the 10k-trial Monte
//!   Carlo yield simulator, off and on the worker pool;
//! - `end_to_end/sym6_145` — one full benchmark evaluation (design flow,
//!   routing, yield) at `EvalSettings::quick()`.
//!
//! Environment: `QPD_BENCH_SAMPLES` caps timed samples per kernel (shim
//! default 3), `QPD_BENCH_QUICK=1` shrinks trial counts for CI smoke
//! runs, `QPD_THREADS` sizes the worker pool.
//!
//! Usage: `bench_snapshot [--out PATH]` (default `BENCH_2.json`).

use std::fmt::Write as _;

use criterion::Criterion;
use qpd_core::{place_qubits, FrequencyAllocator};
use qpd_eval::runner::run_benchmark;
use qpd_eval::EvalSettings;
use qpd_profile::CouplingProfile;
use qpd_topology::{ibm, Architecture, BusMode};
use qpd_yield::YieldSimulator;

fn designed_topology(name: &str) -> Architecture {
    let circuit = qpd_benchmarks::build(name).expect("benchmark");
    let profile = CouplingProfile::of(&circuit);
    let coords = place_qubits(&profile);
    let mut b = Architecture::builder(name);
    b.qubits(coords);
    b.build().expect("valid layout")
}

fn quick() -> bool {
    std::env::var("QPD_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

fn main() {
    let mut out_path = String::from("BENCH_2.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (usage: bench_snapshot [--out PATH])"),
        }
    }

    let quick = quick();
    let alloc_trials: usize = if quick { 300 } else { 2_000 };
    let yield_trials: u64 = if quick { 4_000 } else { 10_000 };

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("snapshot");
    group.sample_size(10);

    // Frequency-allocation kernel: the paper's Algorithm 3 on a chip
    // designed for rd84_142 (the largest of the twelve workloads).
    let arch = designed_topology(if quick { "sym6_145" } else { "rd84_142" });
    let reference = FrequencyAllocator::new().with_trials(alloc_trials).with_reference_path();
    group.bench_function("freq_alloc/reference", |b| b.iter(|| reference.allocate(&arch)));
    let compiled = FrequencyAllocator::new().with_trials(alloc_trials);
    group.bench_function("freq_alloc/compiled", |b| b.iter(|| compiled.allocate(&arch)));

    // Yield-simulation kernel: §5.1's Monte Carlo on the densest IBM
    // baseline.
    let chip = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
    let sim = YieldSimulator::new().with_trials(yield_trials);
    let serial = sim.single_threaded();
    group.bench_function("yield_sim/serial", |b| {
        b.iter(|| serial.estimate(&chip).expect("plan attached"))
    });
    group.bench_function("yield_sim/pooled", |b| {
        b.iter(|| sim.estimate(&chip).expect("plan attached"))
    });

    // End-to-end: one full Figure-10 style evaluation at quick settings
    // (kept quick in both modes so the trajectory stays comparable).
    group.bench_function("end_to_end/sym6_145", |b| {
        b.iter(|| run_benchmark("sym6_145", &EvalSettings::quick()).expect("run"))
    });
    group.finish();

    let results = criterion.take_results();
    let median_of = |id: &str| -> f64 {
        results.iter().find(|r| r.id.ends_with(id)).map(|r| r.median_s).expect("kernel timed")
    };
    let alloc_speedup = median_of("freq_alloc/reference") / median_of("freq_alloc/compiled");
    let yield_speedup = median_of("yield_sim/serial") / median_of("yield_sim/pooled");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"qpd-bench-snapshot/1\",\n");
    json.push_str("  \"pr\": 2,\n");
    let threads = qpd_par::threads();
    let _ = writeln!(json, "  \"threads\": {threads},");
    if threads == 1 {
        // The pool contributes nothing on one worker: these numbers
        // record the algorithmic speedups only.
        json.push_str("  \"note\": \"single-worker host: pool fan-out unmeasured\",\n");
    }
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"alloc_trials\": {alloc_trials},");
    let _ = writeln!(json, "  \"yield_trials\": {yield_trials},");
    json.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", r.json_line());
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedups\": {\n");
    let _ = writeln!(json, "    \"freq_alloc_compiled_over_reference\": {alloc_speedup:.3},");
    let _ = writeln!(json, "    \"yield_sim_pooled_over_serial\": {yield_speedup:.3}");
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("\nwrote {out_path}");
    println!(
        "freq_alloc speedup vs pre-overhaul reference: {alloc_speedup:.2}x; \
         yield_sim pooled vs serial: {yield_speedup:.2}x"
    );
}
