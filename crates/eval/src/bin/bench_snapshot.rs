//! Perf snapshot: times the repo's hot kernels and writes a
//! machine-readable baseline (`BENCH_<pr>.json`) extending the perf
//! trajectory started by `BENCH_2.json`.
//!
//! Kernels:
//!
//! - `freq_alloc/reference` — frequency allocation through the retained
//!   pre-overhaul path (naive serial evaluator, single-draw Box–Muller);
//! - `freq_alloc/compiled` — the same allocation on the compiled-regions
//!   SoA path with pooled candidate evaluation (since PR 3 the pass-1
//!   context filter is vectorized too);
//! - `yield_sim/serial` and `yield_sim/pooled` — the 10k-trial Monte
//!   Carlo yield simulator, off and on the worker pool;
//! - `explore/eval_cold` and `explore/eval_warm` — the design-space
//!   explorer's candidate evaluation sweep with an empty vs. pre-warmed
//!   memo cache (PR 3's explore-throughput kernel; the summary reports
//!   candidate evaluations per second for both);
//! - `explore/round_v2` — one full v2 engine round (dominance
//!   acceptance against the front snapshot + cross-walk recombination)
//!   on warm caches: the per-round orchestration cost of the second-
//!   generation engine (PR 4's explore-throughput kernel);
//! - `explore/stage_incremental` — the same v2 round on the stage-graph
//!   engine with every stage cache fully warm (an identical round ran
//!   first): placement, bus insertion, frequency allocation, routing,
//!   and yield are all served by content key, so this times the true
//!   warm-round hot path the per-stage memoization buys (PR 5's
//!   explore-throughput kernel — same candidate budget as
//!   `explore/round_v2`, which under the pre-stage-graph engine re-ran
//!   frequency allocation on every proposal);
//! - `end_to_end/sym6_145` — one full benchmark evaluation (design flow,
//!   routing, yield) at `EvalSettings::quick()`;
//! - `hardware/eval_fixed`, `hardware/eval_tunable`,
//!   `hardware/eval_heavyhex` — the same end-to-end evaluation once per
//!   [`HardwareFamily`], so the pluggable hardware layer's per-model
//!   cost is on the perf trajectory (PR 6's kernel: the fixed-family
//!   figure doubles as the refactor-overhead check against
//!   `end_to_end/sym6_145`);
//! - `yield/singletons` and `yield/batched` — the same 16 candidates
//!   (one dense topology under 16 distinct frequency plans, so they
//!   share one fabrication-noise trial stream and one SoA lane group)
//!   estimated as 16 independent `estimate` calls vs one
//!   `evaluate_batch` call (PR 7's kernel: the batch generates the
//!   stream once for the group and runs the collision predicates
//!   SIMD-wide across candidates, where each singleton pays its own
//!   stream and checks its own lanes scalar);
//! - `serve/throughput` — eight warm `design` requests through a real
//!   in-process `qpd-serve` daemon (TCP loopback, line protocol,
//!   shared warm stage graph), so the resident-service round-trip cost
//!   is on the trajectory (PR 8's kernel; the snapshot's `serve` block
//!   also records the one-shot cold-vs-warm request latencies the
//!   shared caches buy);
//! - `explore/shard_merge` — the provenance-sorted merge of four
//!   in-process shard states back into the whole-run checkpoint
//!   (PR 9's kernel: the fleet-scale reassembly cost — sorting the
//!   archive union by `[block, walk, step]` provenance and re-inserting
//!   through the content-key dedup — measured apart from the shard
//!   walks themselves, which are priced by the existing explore
//!   kernels);
//! - `alloc/decision` — one frequency-allocation decision (the full
//!   candidate menu for one qubit with every other qubit assigned, the
//!   refinement-sweep shape) through the compiled-regions kernel with a
//!   persistent `AllocScratch`, so fabrication-noise planes are sliced
//!   from the scratch's cache instead of regenerated (PR 10's decision
//!   kernel);
//! - `alloc/singletons` and `alloc/batched` — the same mixed-topology
//!   allocation workload as independent `allocate` calls vs one
//!   `allocate_batch` (PR 10's kernel: the batch carries one scratch —
//!   noise planes keyed by stream, decision buffers — across every
//!   allocation, where each singleton regenerates its noise from
//!   scratch; plans are bit-identical either way).
//!
//! Since PR 10 the `explore/eval_cold` / `explore/eval_warm` sweep runs
//! through `Explorer::evaluate_all` — the batched round path (one
//! assemble batch sharing the allocation scratch, grouped yield
//! simulation) — so those figures price the path the engine's rounds
//! actually take.
//!
//! Environment: `QPD_BENCH_SAMPLES` caps timed samples per kernel (shim
//! default 3), `QPD_BENCH_QUICK=1` shrinks trial counts for CI smoke
//! runs, `QPD_THREADS` sizes the worker pool.
//!
//! Usage: `bench_snapshot [--out PATH]` (default `BENCH_10.json`), or
//! `bench_snapshot --check-schema FRESH.json COMMITTED.json...` to
//! validate snapshot *schemas* without timing anything: every file must
//! carry the snapshot fields and well-formed kernel entries, and the
//! newest committed snapshot's kernel set must be covered by the fresh
//! one (so the snapshot machinery cannot silently drop a kernel). No
//! timing values are ever compared.

use criterion::Criterion;
use qpd_core::{place_qubits, FrequencyAllocator, FrequencyStrategy};
use qpd_eval::runner::run_benchmark;
use qpd_eval::EvalSettings;
use qpd_explore::{
    merge_shard_states, BusSpec, CandidateSpec, ExploreConfig, ExploreSpace, Explorer, Json,
    PlacementVariant, ShardSpec,
};
use qpd_profile::CouplingProfile;
use qpd_serve::{Client, Server, ServerConfig};
use qpd_topology::{ibm, Architecture, BusMode, FrequencyPlan};
use qpd_yield::{
    AllocScratch, BatchRequest, CompiledRegions, FabricationModel, HardwareFamily,
    LocalYieldEvaluator, YieldSimulator,
};

/// The current perf-trajectory point; bump alongside the default
/// `--out` path when a later PR appends a snapshot.
const PR: u64 = 10;

fn designed_topology(name: &str) -> Architecture {
    let circuit = qpd_benchmarks::build(name).expect("benchmark");
    let profile = CouplingProfile::of(&circuit);
    let coords = place_qubits(&profile);
    let mut b = Architecture::builder(name);
    b.qubits(coords);
    b.build().expect("valid layout")
}

fn quick() -> bool {
    std::env::var("QPD_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// A fixed candidate sweep for the explore-throughput kernel: every
/// weighted bus budget under both frequency strategies, plus the
/// transposed-placement variants of the full budget.
fn explore_candidates(space: &ExploreSpace) -> Vec<CandidateSpec> {
    let full = space.full_weighted_len();
    let mut specs = Vec::new();
    for count in 0..=full {
        for frequency in [FrequencyStrategy::Optimized, FrequencyStrategy::FiveFrequency] {
            specs.push(CandidateSpec {
                bus: BusSpec::Weighted { count },
                frequency,
                aux_qubits: 0,
                placement: PlacementVariant::Identity,
                hardware: HardwareFamily::FixedFrequencyTransmon,
            });
        }
    }
    specs.push(CandidateSpec {
        bus: BusSpec::Weighted { count: full },
        frequency: FrequencyStrategy::Optimized,
        aux_qubits: 0,
        placement: PlacementVariant::Transposed,
        hardware: HardwareFamily::FixedFrequencyTransmon,
    });
    specs
}

/// Reads one snapshot document, returning `(pr, kernel ids)` after
/// checking the schema fields; pushes one message per problem.
fn check_snapshot_schema(path: &str, failures: &mut Vec<String>) -> Option<(u64, Vec<String>)> {
    let fail = |failures: &mut Vec<String>, what: &str| {
        failures.push(format!("{path}: {what}"));
        None
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return fail(failures, "unreadable");
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => return fail(failures, &format!("unparseable: {e}")),
    };
    if doc.get("schema").and_then(Json::as_str) != Some("qpd-bench-snapshot/1") {
        return fail(failures, "missing or unknown `schema` tag");
    }
    let Some(pr) = doc.get("pr").and_then(Json::as_u64) else {
        return fail(failures, "missing `pr`");
    };
    for field in ["threads", "alloc_trials", "yield_trials"] {
        if doc.get(field).and_then(Json::as_u64).is_none() {
            return fail(failures, &format!("missing numeric `{field}`"));
        }
    }
    if doc.get("quick").and_then(Json::as_bool).is_none() {
        return fail(failures, "missing boolean `quick`");
    }
    let Some(Json::Obj(speedups)) = doc.get("speedups") else {
        return fail(failures, "missing `speedups` object");
    };
    if speedups.is_empty() {
        return fail(failures, "missing `speedups` object");
    }
    // PR 10 added the batched-allocation kernel pair; later snapshots
    // must keep reporting its speedup.
    if pr >= 10 && !speedups.iter().any(|(k, _)| k == "alloc_batched_over_singletons") {
        return fail(failures, "missing `speedups.alloc_batched_over_singletons` (PR >= 10)");
    }
    let Some(kernels) = doc.get("kernels").and_then(Json::as_arr) else {
        return fail(failures, "missing `kernels` array");
    };
    if kernels.is_empty() {
        return fail(failures, "empty `kernels` array");
    }
    let mut ids = Vec::new();
    for k in kernels {
        let Some(id) = k.get("id").and_then(Json::as_str) else {
            return fail(failures, "kernel entry without `id`");
        };
        for field in ["mean_s", "median_s", "min_s"] {
            if k.get(field).and_then(Json::as_f64).is_none() {
                return fail(failures, &format!("kernel {id}: missing `{field}`"));
            }
        }
        ids.push(id.to_string());
    }
    Some((pr, ids))
}

/// `--check-schema FRESH COMMITTED...`: schema/coverage validation only,
/// no timing comparisons. Exits non-zero on any finding.
fn check_schema_mode(paths: &[String]) -> ! {
    let (fresh_path, committed) =
        paths.split_first().expect("--check-schema needs a fresh snapshot path");
    let mut failures = Vec::new();
    let fresh = check_snapshot_schema(fresh_path, &mut failures);
    let mut newest: Option<(u64, String, Vec<String>)> = None;
    for path in committed {
        if let Some((pr, ids)) = check_snapshot_schema(path, &mut failures) {
            if newest.as_ref().is_none_or(|(best, _, _)| pr > *best) {
                newest = Some((pr, path.clone(), ids));
            }
        }
    }
    // The fresh snapshot must still produce every kernel the newest
    // committed snapshot recorded — fields and kernels present, nothing
    // about how fast they ran.
    if let (Some((_, fresh_ids)), Some((pr, path, ids))) = (&fresh, &newest) {
        for id in ids {
            if !fresh_ids.contains(id) {
                failures.push(format!(
                    "{fresh_path}: kernel `{id}` from {path} (PR {pr}) is gone from the \
                     fresh snapshot"
                ));
            }
        }
    }
    if failures.is_empty() {
        println!(
            "check-schema: {} snapshot(s) well-formed; fresh covers the PR {} kernel set",
            paths.len(),
            newest.map(|(pr, _, _)| pr).unwrap_or(0)
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("check-schema FAILED: {f}");
    }
    std::process::exit(1);
}

fn main() {
    let mut out_path = format!("BENCH_{PR}.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check-schema" => {
                let paths: Vec<String> = args.collect();
                check_schema_mode(&paths);
            }
            other => panic!(
                "unknown argument {other:?} (usage: bench_snapshot [--out PATH] | \
                 bench_snapshot --check-schema FRESH COMMITTED...)"
            ),
        }
    }

    let quick = quick();
    let alloc_trials: usize = if quick { 300 } else { 2_000 };
    let yield_trials: u64 = if quick { 4_000 } else { 10_000 };

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("snapshot");
    group.sample_size(10);

    // Frequency-allocation kernel: the paper's Algorithm 3 on a chip
    // designed for rd84_142 (the largest of the twelve workloads).
    let arch = designed_topology(if quick { "sym6_145" } else { "rd84_142" });
    let reference = FrequencyAllocator::new().with_trials(alloc_trials).with_reference_path();
    group.bench_function("freq_alloc/reference", |b| b.iter(|| reference.allocate(&arch)));
    let compiled = FrequencyAllocator::new().with_trials(alloc_trials);
    group.bench_function("freq_alloc/compiled", |b| b.iter(|| compiled.allocate(&arch)));

    // One allocation decision at refinement-sweep shape — the full
    // candidate menu for qubit 0 with every other qubit assigned —
    // through the compiled kernel with a persistent scratch, so from
    // the second sample on the noise planes are sliced, not sampled.
    let decision_eval = LocalYieldEvaluator::new(
        alloc_trials,
        FabricationModel::new(FabricationModel::PAPER_SIGMA_GHZ),
        HardwareFamily::FixedFrequencyTransmon.model().collision_params(),
        0,
    );
    let decision_regions = CompiledRegions::new(&arch);
    let decision_menu = compiled.candidates().to_vec();
    let decision_assigned: Vec<Option<f64>> = (0..arch.num_qubits())
        .map(|q| (q != 0).then(|| 5.0 + 0.01 * ((q * 7) % 35) as f64))
        .collect();
    let mut decision_scratch = AllocScratch::new();
    group.bench_function("alloc/decision", |b| {
        b.iter(|| {
            decision_eval.evaluate_candidates_compiled_with(
                &decision_regions,
                &decision_assigned,
                0,
                &decision_menu,
                &mut decision_scratch,
            )
        })
    });

    // Batched cross-proposal allocation: the same mixed-topology
    // workload as independent `allocate` calls (each regenerates its
    // noise and decision state) vs one `allocate_batch` carrying one
    // scratch across the batch. Same seed and sigma throughout, so the
    // batch re-slices every noise plane after the first allocation.
    let alloc_batch_archs: Vec<Architecture> = vec![
        arch.clone(),
        ibm::ibm_16q_2x8(BusMode::TwoQubitOnly),
        ibm::ibm_16q_2x8(BusMode::MaxFourQubit),
        ibm::ibm_20q_4x5(BusMode::TwoQubitOnly),
    ];
    let alloc_batch: Vec<&Architecture> = alloc_batch_archs.iter().collect();
    group.bench_function("alloc/singletons", |b| {
        b.iter(|| alloc_batch.iter().map(|a| compiled.allocate(a)).collect::<Vec<_>>())
    });
    group.bench_function("alloc/batched", |b| b.iter(|| compiled.allocate_batch(&alloc_batch)));

    // Yield-simulation kernel: §5.1's Monte Carlo on the densest IBM
    // baseline.
    let chip = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
    let sim = YieldSimulator::new().with_trials(yield_trials);
    let serial = sim.single_threaded();
    group.bench_function("yield_sim/serial", |b| {
        b.iter(|| serial.estimate(&chip).expect("plan attached"))
    });
    group.bench_function("yield_sim/pooled", |b| {
        b.iter(|| sim.estimate(&chip).expect("plan attached"))
    });

    // Explore-throughput kernel: the same candidate sweep with the memo
    // cache cleared per iteration (cold: every design, routing, and
    // yield simulation runs) vs. left warm (evaluations are two hash
    // lookups). Since PR 10 the sweep goes through `evaluate_all` — the
    // batched round path (one assemble batch over the shared allocation
    // scratch, grouped yield simulation) — which is what the engine's
    // rounds actually run; `clear_stage_caches` drops memoized results
    // but not the derived scratch, exactly like a long-running sweep.
    // The engine and space are built once outside the timed region, so
    // both numbers measure candidate evaluation alone.
    let explore_config = ExploreConfig {
        alloc_trials: if quick { 100 } else { 400 },
        yield_trials: if quick { 1_000 } else { 2_000 },
        ..ExploreConfig::quick()
    };
    let space = ExploreSpace::new(qpd_benchmarks::build("sym6_145").expect("sym6"), 1);
    let candidates = explore_candidates(&space);
    let explorer = Explorer::new(space, explore_config).expect("baseline");
    group.bench_function("explore/eval_cold", |b| {
        b.iter(|| {
            explorer.clear_stage_caches();
            explorer.evaluate_all(&candidates).expect("candidates evaluate")
        })
    });
    // The last cold iteration left the cache warm.
    group.bench_function("explore/eval_warm", |b| {
        b.iter(|| explorer.evaluate_all(&candidates).expect("candidates evaluate"))
    });

    // The v2 engine's per-round orchestration: dominance acceptance
    // against the front snapshot plus cross-walk recombination, on the
    // same warm caches (fresh candidates hit the memo after the first
    // sample, so this times the engine, not the simulators).
    let v2_state = explorer.initial_state().expect("initial state");
    group.bench_function("explore/round_v2", |b| {
        b.iter(|| {
            let mut state = v2_state.clone();
            explorer.advance_round(&mut state).expect("v2 round");
            state
        })
    });

    // The stage-graph warm-round hot path: the identical round at the
    // identical candidate budget, guaranteed fully warm (the round_v2
    // samples above already replayed it), so every stage — placement,
    // buses, frequency allocation, routing, yield — is served by
    // content key and the timing isolates engine orchestration plus
    // cache lookups. Compare against the PR 4 `explore/round_v2`
    // figure, whose engine re-ran frequency allocation on every
    // proposal even with warm yield/route memos.
    {
        let mut warm_up = v2_state.clone();
        explorer.advance_round(&mut warm_up).expect("warm-up round");
    }
    group.bench_function("explore/stage_incremental", |b| {
        b.iter(|| {
            let mut state = v2_state.clone();
            explorer.advance_round(&mut state).expect("stage-incremental round");
            state
        })
    });

    // End-to-end: one full Figure-10 style evaluation at quick settings
    // (kept quick in both modes so the trajectory stays comparable).
    group.bench_function("end_to_end/sym6_145", |b| {
        b.iter(|| run_benchmark("sym6_145", &EvalSettings::quick()).expect("run"))
    });

    // Per-hardware-model kernel: the same end-to-end evaluation once
    // per family. `hardware/eval_fixed` runs the identical workload as
    // `end_to_end/sym6_145`, so any drift between the two is pure
    // hardware-layer dispatch overhead; the tunable and heavy-hex
    // figures put the non-default collision models on the trajectory.
    for family in HardwareFamily::ALL {
        let settings = EvalSettings::quick().with_hardware(family);
        group.bench_function(format!("hardware/eval_{}", family.as_str()), |b| {
            b.iter(|| run_benchmark("sym6_145", &settings).expect("run"))
        });
    }
    // Batched cross-candidate kernel: sixteen frequency-plan variants
    // of the dense chip — same topology, trials, seed, and sigma, so
    // all sixteen share one fabrication-noise trial stream and one SoA
    // lane group. `yield/singletons` pays sixteen scalar estimates
    // (sixteen private noise streams, predicates one candidate at a
    // time); `yield/batched` generates the stream once for the group
    // and checks the collision predicates SIMD-wide across candidates.
    const BATCH_CANDIDATES: usize = 16;
    let plan_variants: Vec<Architecture> = (0..BATCH_CANDIDATES)
        .map(|i| {
            // Compress toward 5.00 GHz and shift up: distinct plans per
            // candidate, all inside the allowed 5.00-5.34 GHz band.
            let moved: Vec<f64> = chip
                .frequencies()
                .expect("baseline plan")
                .as_slice()
                .iter()
                .map(|f| 5.00 + (f - 5.00) * 0.90 + 0.002 * i as f64)
                .collect();
            chip.clone().with_frequencies(FrequencyPlan::new(moved)).expect("in band")
        })
        .collect();
    group.bench_function("yield/singletons", |b| {
        b.iter(|| {
            plan_variants
                .iter()
                .map(|arch| serial.estimate(arch).expect("plan attached").successes())
                .sum::<u64>()
        })
    });
    let batch_requests: Vec<BatchRequest<'_>> =
        plan_variants.iter().map(|arch| BatchRequest { simulator: serial, arch }).collect();
    group.bench_function("yield/batched", |b| {
        b.iter(|| {
            YieldSimulator::evaluate_batch(&batch_requests)
                .into_iter()
                .map(|r| r.expect("plan attached").successes())
                .sum::<u64>()
        })
    });
    // Resident-daemon kernel: the same design request through a real
    // qpd-serve daemon on TCP loopback. The first request pays the cold
    // stage cascade, the repeat is served from the shared warm caches —
    // both one-shot latencies land in the snapshot's `serve` block —
    // and the timed kernel pushes eight warm requests per iteration so
    // the protocol + dispatch round-trip cost is on the trajectory.
    const SERVE_DESIGN: &str = r#"{"id":"bench","op":"design","benchmark":"sym6_145"}"#;
    const SERVE_BATCH: usize = 8;
    let serve_dir = std::env::temp_dir().join(format!("qpd_bench_serve_{}", std::process::id()));
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        out_dir: serve_dir.clone(),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let serve_addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let mut serve_client = Client::connect(serve_addr).expect("connect");
    let timed_request = |client: &mut Client| {
        let start = std::time::Instant::now();
        client.request_raw(SERVE_DESIGN).expect("design served");
        start.elapsed().as_secs_f64()
    };
    let serve_cold_s = timed_request(&mut serve_client);
    let serve_warm_s = timed_request(&mut serve_client);
    group.bench_function("serve/throughput", |b| {
        b.iter(|| {
            for _ in 0..SERVE_BATCH {
                serve_client.request_raw(SERVE_DESIGN).expect("design served");
            }
        })
    });
    serve_client.request_raw(r#"{"id":"stop","op":"shutdown"}"#).expect("shutdown");
    server_thread.join().expect("server thread").expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&serve_dir);

    // Shard-merge kernel: four shard states of one shardable run
    // (built once, outside the timed region — the walks themselves are
    // priced by the explore kernels above), merged back into the
    // whole-run checkpoint per iteration. This times the fleet-scale
    // reassembly path alone: provenance sort of the archive union plus
    // content-key dedup re-insertion.
    const SHARDS: usize = 4;
    let shard_config = ExploreConfig {
        walks: SHARDS,
        rounds: 2,
        steps_per_round: 2,
        alloc_trials: if quick { 60 } else { 100 },
        yield_trials: if quick { 400 } else { 1_000 },
        ..ExploreConfig::quick()
    }
    .v1_compat();
    let shard_space = ExploreSpace::new(qpd_benchmarks::build("sym6_145").expect("sym6"), 1);
    let shard_explorer = Explorer::new(shard_space, shard_config).expect("shardable");
    let shard_states: Vec<_> = (0..SHARDS)
        .map(|index| shard_explorer.run_shard(ShardSpec { index, of: SHARDS }).expect("shard runs"))
        .collect();
    group.bench_function("explore/shard_merge", |b| {
        b.iter(|| merge_shard_states("sym6_145", shard_config, &shard_states).expect("merges"))
    });
    let merged = merge_shard_states("sym6_145", shard_config, &shard_states).expect("merge");
    group.finish();

    let results = criterion.take_results();
    let median_of = |id: &str| -> f64 {
        results.iter().find(|r| r.id.ends_with(id)).map(|r| r.median_s).expect("kernel timed")
    };
    let alloc_speedup = median_of("freq_alloc/reference") / median_of("freq_alloc/compiled");
    let yield_speedup = median_of("yield_sim/serial") / median_of("yield_sim/pooled");
    let cache_speedup = median_of("explore/eval_cold") / median_of("explore/eval_warm");
    let batch_speedup = median_of("yield/singletons") / median_of("yield/batched");
    let alloc_batch_speedup = median_of("alloc/singletons") / median_of("alloc/batched");
    let evals_per_s = |id: &str| candidates.len() as f64 / median_of(id);

    let threads = qpd_par::threads();
    let round3 = |v: f64| (v * 1_000.0).round() / 1_000.0;
    let round6 = |v: f64| (v * 1_000_000.0).round() / 1_000_000.0;
    let mut top = vec![
        ("schema", Json::str("qpd-bench-snapshot/1")),
        ("pr", Json::int(PR)),
        ("threads", Json::int(threads as u64)),
    ];
    if threads == 1 {
        // The pool contributes nothing on one worker: these numbers
        // record the algorithmic speedups only.
        top.push(("note", Json::str("single-worker host: pool fan-out unmeasured")));
    }
    top.extend([
        ("quick", Json::Bool(quick)),
        ("alloc_trials", Json::int(alloc_trials as u64)),
        ("yield_trials", Json::int(yield_trials)),
        ("kernels", Json::Arr(results.iter().map(|r| Json::Raw(r.json_line())).collect())),
        (
            "explore",
            Json::obj([
                ("candidates", Json::int(candidates.len() as u64)),
                ("cold_evals_per_s", Json::num(round3(evals_per_s("explore/eval_cold")))),
                ("warm_evals_per_s", Json::num(round3(evals_per_s("explore/eval_warm")))),
                // v2 throughput: proposals a dominance+recombination
                // round pushes through per second (walks x steps per
                // round timed by `explore/round_v2`).
                (
                    "round_v2_proposals_per_s",
                    Json::num(round3(
                        (explore_config.walks * explore_config.steps_per_round) as f64
                            / median_of("explore/round_v2"),
                    )),
                ),
                // The stage-graph warm round at the same budget: the
                // cross-PR comparison point against BENCH_4's
                // round_v2_proposals_per_s.
                (
                    "stage_incremental_proposals_per_s",
                    Json::num(round3(
                        (explore_config.walks * explore_config.steps_per_round) as f64
                            / median_of("explore/stage_incremental"),
                    )),
                ),
            ]),
        ),
        (
            "hardware",
            Json::obj(HardwareFamily::ALL.map(|family| {
                let id = format!("hardware/eval_{}", family.as_str());
                (family.as_str(), Json::num(round3(median_of(&id))))
            })),
        ),
        (
            "batch",
            Json::obj([
                ("candidates", Json::int(BATCH_CANDIDATES as u64)),
                // Grouped candidates a batch pushes through per second
                // vs the same workload as independent estimates.
                (
                    "batched_candidates_per_s",
                    Json::num(round3(BATCH_CANDIDATES as f64 / median_of("yield/batched"))),
                ),
                (
                    "singleton_candidates_per_s",
                    Json::num(round3(BATCH_CANDIDATES as f64 / median_of("yield/singletons"))),
                ),
            ]),
        ),
        (
            "shard",
            Json::obj([
                ("shards", Json::int(SHARDS as u64)),
                ("archive_entries", Json::int(merged.state.archive.len() as u64)),
                ("front_entries", Json::int(merged.state.front_indices().len() as u64)),
                // Whole-run reassemblies per second from the four shard
                // states (provenance sort + dedup re-insertion).
                ("merges_per_s", Json::num(round3(1.0 / median_of("explore/shard_merge")))),
            ]),
        ),
        (
            "serve",
            Json::obj([
                // One-shot request latencies over TCP loopback: the
                // first request runs the full cold stage cascade, the
                // repeat is served from the daemon's shared warm
                // caches.
                ("cold_request_s", Json::num(round6(serve_cold_s))),
                ("warm_request_s", Json::num(round6(serve_warm_s))),
                (
                    "warm_requests_per_s",
                    Json::num(round3(SERVE_BATCH as f64 / median_of("serve/throughput"))),
                ),
            ]),
        ),
        (
            "speedups",
            Json::obj([
                ("freq_alloc_compiled_over_reference", Json::num(round3(alloc_speedup))),
                ("yield_sim_pooled_over_serial", Json::num(round3(yield_speedup))),
                ("explore_eval_warm_over_cold", Json::num(round3(cache_speedup))),
                ("yield_batched_over_singletons", Json::num(round3(batch_speedup))),
                ("alloc_batched_over_singletons", Json::num(round3(alloc_batch_speedup))),
                ("serve_warm_over_cold", Json::num(round3(serve_cold_s / serve_warm_s))),
            ]),
        ),
    ]);
    let json = Json::Obj(top.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).render();

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("\nwrote {out_path}");
    println!(
        "freq_alloc speedup vs pre-overhaul reference: {alloc_speedup:.2}x; \
         yield_sim pooled vs serial: {yield_speedup:.2}x; \
         explore cache warm vs cold: {cache_speedup:.2}x; \
         yield batched vs {BATCH_CANDIDATES} singletons: {batch_speedup:.2}x; \
         alloc batched vs {} singletons: {alloc_batch_speedup:.2}x; \
         serve warm vs cold request: {:.2}x",
        alloc_batch.len(),
        serve_cold_s / serve_warm_s
    );
}
