//! Regenerates paper Figure 5: coupling-strength patterns of the
//! 8-qubit UCCSD ansatz and the 15-qubit misex1 arithmetic circuit.
//!
//! Usage: `cargo run --release -p qpd-eval --bin fig05 [--csv]`

use qpd_profile::{render, CouplingProfile, PatternReport};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    for name in ["UCCSD_ansatz_8", "misex1_241"] {
        let circuit = qpd_benchmarks::build(name).expect("benchmark exists");
        let profile = CouplingProfile::of(&circuit);
        println!(
            "== {name}: {} qubits, {} two-qubit gates ==",
            circuit.num_qubits(),
            profile.total_two_qubit_gates()
        );
        if csv {
            print!("{}", render::matrix_csv(&profile));
        } else {
            print!("{}", render::matrix_table(&profile));
        }
        let report = PatternReport::of(&profile);
        println!(
            "shape: {:?}; density {:.2}; top-quintile weight share {:.2}; hubs {:?}\n",
            report.shape, report.density, report.top_quintile_weight_share, report.hubs
        );
    }
    println!(
        "Paper observations (§3.2): UCCSD couples adjacent qubits ~10x more than \
         distant ones (chain band); misex1's pure input lines never couple to each \
         other while target/ancilla lines form a dense hub."
    );
}
