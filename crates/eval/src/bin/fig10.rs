//! Regenerates paper Figure 10: yield versus normalized reciprocal
//! post-mapping gate count for all twelve benchmarks under the five
//! experiment configurations.
//!
//! Usage:
//!   cargo run --release -p qpd-eval --bin fig10 [--quick] [--csv]
//!       [--trials N] [--svg DIR] [names...]
//!
//! `--quick` trades Monte Carlo accuracy for speed (2k yield trials,
//! 200 allocation trials); `--csv` emits machine-readable rows; an
//! explicit list of benchmark names restricts the sweep.

use qpd_eval::report::{run_csv, run_table, CSV_HEADER};
use qpd_eval::runner::{run_benchmark, EvalSettings};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trials: Option<u64> = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let csv = args.iter().any(|a| a == "--csv");
    let svg_dir: Option<String> =
        args.iter().position(|a| a == "--svg").and_then(|i| args.get(i + 1)).cloned();
    let names: Vec<String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--trials" || *a == "--svg" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .cloned()
            .collect()
    };
    let mut settings = if quick { EvalSettings::quick() } else { EvalSettings::default() };
    if let Some(t) = trials {
        settings.yield_trials = t;
    }

    let benchmarks: Vec<String> = if names.is_empty() {
        qpd_benchmarks::ALL.iter().map(|s| s.name.to_string()).collect()
    } else {
        names
    };

    if csv {
        println!("{CSV_HEADER}");
    }
    for name in &benchmarks {
        let start = std::time::Instant::now();
        match run_benchmark(name, &settings) {
            Ok(run) => {
                if csv {
                    print!("{}", run_csv(&run));
                } else {
                    print!("{}", run_table(&run));
                    println!("({:.1?})\n", start.elapsed());
                }
                if let Some(dir) = &svg_dir {
                    std::fs::create_dir_all(dir).expect("create svg output dir");
                    let path = std::path::Path::new(dir).join(format!("{name}.svg"));
                    std::fs::write(&path, qpd_eval::plot::svg_scatter(&run)).expect("write svg");
                    eprintln!("wrote {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        }
    }
}
