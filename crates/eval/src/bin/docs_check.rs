//! docs_check: the CI linter keeping the prose docs honest.
//!
//! Usage:
//!   docs_check [--root DIR] [files...]
//!
//! Checks, per markdown file (default: `README.md`,
//! `docs/OPERATIONS.md`, `docs/CHECKPOINTS.md` under the root):
//!
//! 1. **Fences** — every ``` code fence is closed.
//! 2. **Links** — every relative markdown link target exists on disk
//!    (absolute URLs and `#fragment` links are skipped).
//! 3. **Flags** — every `--flag` token the docs mention is actually
//!    defined by one of the workspace binaries (a quoted `"--flag"`
//!    literal somewhere under `crates/*/src/bin/*.rs`), or is on the
//!    small allowlist of cargo's own flags. Docs drifting ahead of —
//!    or behind — the shipped CLI fail CI with the file, line, and
//!    offending token.
//!
//! Exit code 1 on any finding, 2 on usage errors, 0 when clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Flags legitimately mentioned in docs that are not defined by a
/// workspace binary (cargo's own surface).
const ALLOWED: &[&str] = &["--release", "--no-deps", "--open", "--no-run", "--all-targets"];

/// Extracts every quoted `"--flag"` literal from one source file.
fn quoted_flags(source: &str, into: &mut BTreeSet<String>) {
    let bytes = source.as_bytes();
    let mut i = 0;
    while let Some(at) = source[i..].find("\"--") {
        let start = i + at + 1;
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'-')
        {
            end += 1;
        }
        if bytes.get(end) == Some(&b'"') && end > start + 2 {
            into.insert(source[start..end].to_string());
        }
        i = end;
    }
}

/// Every flag the workspace binaries define: quoted literals in
/// `crates/*/src/bin/*.rs`.
fn binary_flags(root: &Path) -> BTreeSet<String> {
    let mut flags = BTreeSet::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        fail(format!("no crates/ directory under {}", root.display()));
    };
    for krate in entries.flatten() {
        let bin_dir = krate.path().join("src").join("bin");
        let Ok(bins) = std::fs::read_dir(&bin_dir) else { continue };
        for bin in bins.flatten() {
            let path = bin.path();
            if path.extension().is_some_and(|e| e == "rs") {
                let source = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
                quoted_flags(&source, &mut flags);
            }
        }
    }
    if flags.is_empty() {
        fail("found no CLI flags under crates/*/src/bin — wrong --root?");
    }
    flags
}

/// `--flag` tokens mentioned in one line of documentation.
fn doc_flags(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(at) = line[i..].find("--") {
        let start = i + at;
        // A real flag token starts at a word boundary (not `a--b`, not
        // a `---` rule) and continues with [a-z0-9-].
        let boundary = start == 0
            || bytes[start - 1].is_ascii_whitespace()
            || matches!(bytes[start - 1], b'`' | b'(' | b'[' | b'"' | b'\'');
        let mut end = start + 2;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'-')
        {
            end += 1;
        }
        if boundary && end > start + 2 {
            out.push(line[start..end].to_string());
        }
        i = end.max(start + 2);
    }
    out
}

/// Relative link targets of one line: `](target)` with URLs and pure
/// fragments skipped.
fn doc_links(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(at) = line[i..].find("](") {
        let start = i + at + 2;
        let Some(len) = line[start..].find(')') else { break };
        let target = &line[start..start + len];
        i = start + len;
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with('#')
            || target.is_empty()
        {
            continue;
        }
        // Drop a trailing fragment: FILE.md#section checks FILE.md.
        let path = target.split('#').next().unwrap_or(target);
        out.push(path.to_string());
    }
    out
}

fn check_file(path: &Path, known: &BTreeSet<String>, findings: &mut Vec<String>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut fence_open: Option<usize> = None;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim_start().starts_with("```") {
            fence_open = match fence_open {
                None => Some(ln),
                Some(_) => None,
            };
            continue;
        }
        for link in doc_links(line) {
            if !dir.join(&link).exists() {
                findings.push(format!("{}:{ln}: broken link `{link}`", path.display()));
            }
        }
        for flag in doc_flags(line) {
            if !known.contains(&flag) && !ALLOWED.contains(&flag.as_str()) {
                findings.push(format!(
                    "{}:{ln}: `{flag}` is not a flag of any workspace binary",
                    path.display()
                ));
            }
        }
    }
    if let Some(open) = fence_open {
        findings.push(format!("{}:{open}: unclosed code fence", path.display()));
    }
}

fn main() {
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().unwrap_or_else(|| fail("--root needs a value")))
            }
            other if !other.starts_with("--") => files.push(PathBuf::from(other)),
            other => fail(format!("unknown argument {other:?}")),
        }
    }
    if files.is_empty() {
        files = ["README.md", "docs/OPERATIONS.md", "docs/CHECKPOINTS.md"]
            .iter()
            .map(|f| root.join(f))
            .collect();
    }
    let known = binary_flags(&root);
    let mut findings = Vec::new();
    for file in &files {
        check_file(file, &known, &mut findings);
    }
    if findings.is_empty() {
        println!("docs_check: {} file(s) clean ({} known flags)", files.len(), known.len());
    } else {
        for f in &findings {
            eprintln!("docs_check: {f}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_flags_find_real_tokens_and_skip_rules() {
        assert_eq!(doc_flags("use `--shard i/N` and --merge."), vec!["--shard", "--merge"]);
        assert!(doc_flags("a---rule and em—dash and a--b").is_empty());
    }

    #[test]
    fn doc_links_skip_urls_and_fragments() {
        let line = "[a](docs/X.md) [b](https://x.y) [c](#frag) [d](F.md#sec)";
        assert_eq!(doc_links(line), vec!["docs/X.md", "F.md"]);
    }

    #[test]
    fn quoted_flag_extraction_matches_match_arms() {
        let mut flags = BTreeSet::new();
        quoted_flags(r#"match a { "--seed" => x, "--out-dir" => y, "--" => z }"#, &mut flags);
        assert!(flags.contains("--seed") && flags.contains("--out-dir"));
        assert!(!flags.contains("--"));
    }
}
