//! Regenerates paper Figure 9: IBM's four baseline designs, rendered
//! with their 5-frequency patterns, plus their simulated yields (an
//! addition the figure itself does not show but §5.3 relies on).
//!
//! Usage: `cargo run --release -p qpd-eval --bin fig09 [--trials N]`

use qpd_topology::{ibm, render};
use qpd_yield::YieldSimulator;

fn main() {
    let mut trials = 10_000u64;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--trials") {
        trials = args.get(i + 1).and_then(|v| v.parse().ok()).expect("--trials needs an integer");
    }
    let sim = YieldSimulator::new().with_trials(trials);
    for (i, arch) in ibm::all_baselines().iter().enumerate() {
        println!("== Figure 9 ({}) ==", i + 1);
        print!("{}", render::ascii(arch));
        let estimate = sim.estimate(arch).expect("baselines carry frequency plans");
        println!(
            "couplings: {} edges ({} two-qubit buses + {} four-qubit buses)",
            arch.coupling_edges().len(),
            arch.two_qubit_buses().len(),
            arch.four_qubit_buses().len()
        );
        println!("yield ({} trials, sigma = 30 MHz): {estimate}", trials);
        // Which of the seven Figure 3 conditions kill this design?
        let diag_trials = trials.min(5_000);
        let (breakdown, _) = YieldSimulator::new()
            .with_trials(diag_trials)
            .condition_breakdown(arch)
            .expect("plan attached");
        let shares: Vec<String> = breakdown
            .iter()
            .enumerate()
            .map(|(c, &n)| format!("c{}:{:.0}%", c + 1, 100.0 * n as f64 / diag_trials as f64))
            .collect();
        println!("failing condition shares ({diag_trials} trials): {}\n", shares.join(" "));
    }
}
