//! Prints the profile fingerprints of all benchmarks (used to maintain
//! the golden values in tests/benchmark_roundtrip.rs).
use qpd_profile::CouplingProfile;
fn main() {
    for spec in &qpd_benchmarks::ALL {
        let p = CouplingProfile::of(&qpd_benchmarks::build(spec.name).unwrap());
        println!("        (\"{}\", {}, {}),", spec.name, p.total_two_qubit_gates(), p.edge_count());
    }
}
