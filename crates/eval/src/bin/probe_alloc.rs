//! Diagnostic probe: how good can frequency allocation get on a
//! generated layout, and how does the layout's constraint count compare
//! to the IBM lattice? Not part of the paper reproduction; used to
//! calibrate Algorithm 3's implementation.

use qpd_core::{place_qubits, FrequencyAllocator};
use qpd_profile::CouplingProfile;
use qpd_topology::{five_frequency_plan, ibm, Architecture, BusMode};
use qpd_yield::{CollisionChecker, YieldSimulator};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn stats(arch: &Architecture) {
    let checker = CollisionChecker::new(arch);
    let mut degs: Vec<usize> = (0..arch.num_qubits()).map(|q| arch.degree(q)).collect();
    degs.sort_unstable();
    println!(
        "{:<22} qubits={} edges={} triples={} degrees={:?}",
        arch.name(),
        arch.num_qubits(),
        checker.pair_count(),
        checker.triple_count(),
        degs
    );
}

fn main() {
    let circuit = qpd_benchmarks::build("rd84_142").unwrap();
    let profile = CouplingProfile::of(&circuit);
    let coords = place_qubits(&profile);
    let mut b = Architecture::builder("eff-rd84-b0");
    b.qubits(coords);
    let arch = b.build().unwrap();

    let baseline = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
    stats(&baseline);
    stats(&arch);

    let sim = YieldSimulator::new().with_trials(20_000).with_seed(123);
    let ibm_rate = sim.estimate(&baseline).unwrap().rate();
    println!("ibm 2x8 with 5-freq: {ibm_rate:.4e}");

    let five = five_frequency_plan(&arch);
    println!(
        "blob with 5-freq:    {:.4e}",
        sim.estimate_with_frequencies(&arch, five.as_slice()).rate()
    );

    for (sweeps, trials) in [(0usize, 2_000usize), (2, 2_000), (4, 4_000), (8, 8_000)] {
        let plan = FrequencyAllocator::new()
            .with_trials(trials)
            .with_refinement_sweeps(sweeps)
            .allocate(&arch);
        let rate = sim.estimate_with_frequencies(&arch, plan.as_slice()).rate();
        println!("alloc sweeps={sweeps} trials={trials}: {rate:.4e}");
    }

    // Randomized hill climbing on the full-chip yield as an upper-bound
    // probe (1 MHz moves, 20k-trial objective).
    let plan =
        FrequencyAllocator::new().with_trials(4_000).with_refinement_sweeps(4).allocate(&arch);
    let mut freqs: Vec<f64> = plan.as_slice().to_vec();
    let eval_sim = YieldSimulator::new().with_trials(20_000).with_seed(7);
    let mut best = eval_sim.estimate_with_frequencies(&arch, &freqs).rate();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let start = std::time::Instant::now();
    let mut accepted = 0;
    while start.elapsed().as_secs() < 60 {
        let q = rng.gen_range(0..freqs.len());
        let delta = [-0.03, -0.02, -0.01, 0.01, 0.02, 0.03][rng.gen_range(0..6usize)];
        let old = freqs[q];
        let cand = (old + delta).clamp(5.0, 5.34);
        freqs[q] = cand;
        let rate = eval_sim.estimate_with_frequencies(&arch, &freqs).rate();
        if rate > best {
            best = rate;
            accepted += 1;
        } else {
            freqs[q] = old;
        }
    }
    println!("hill-climbed upper bound: {best:.4e} ({accepted} accepted moves)");
}
