//! Experiment harness reproducing the paper's evaluation (§5).
//!
//! The harness wires the whole workspace together: benchmarks are built
//! (`qpd-benchmarks`), profiled (`qpd-profile`), turned into chips by the
//! five experiment configurations of §5.2 (`qpd-core`, `qpd-topology`),
//! routed with SABRE (`qpd-mapping`) for the performance metric, and
//! Monte Carlo simulated (`qpd-yield`) for the yield metric.
//!
//! Binaries regenerate each paper artifact:
//!
//! - `fig04` — the profiling walkthrough of Figure 4;
//! - `fig05` — the coupling-strength heat maps of Figure 5;
//! - `fig09` — the IBM baseline designs of Figure 9;
//! - `fig10` — the twelve yield-vs-performance subfigures of Figure 10;
//! - `table_summary` — the §5.3/§5.4 quantitative claims.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod configs;
pub mod plot;
pub mod report;
pub mod runner;
pub mod summary;

pub use configs::ConfigKind;
pub use runner::{BenchmarkRun, DataPoint, EvalError, EvalSettings};
