//! The five experiment configurations of paper §5.2.

use std::fmt;
use std::sync::Arc;

use qpd_core::{BusStrategy, DesignFlow, FrequencyStrategy, StagePlan};
use qpd_profile::CouplingProfile;
use qpd_topology::{ibm, pattern_frequency_plan, Architecture, BusMode};

use crate::runner::{EvalError, EvalSettings};

/// Which experiment configuration produced a data point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// IBM's four general-purpose baselines (Figure 9).
    Ibm,
    /// The full design flow: layout + weighted buses + optimized
    /// frequencies.
    EffFull,
    /// Layout + weighted buses, but IBM's 5-frequency scheme.
    Eff5Freq,
    /// Layout + random buses + optimized frequencies.
    EffRdBus,
    /// Layout only: 2-qubit buses or maximal 4-qubit buses, 5-frequency
    /// scheme.
    EffLayoutOnly,
}

impl ConfigKind {
    /// The paper's name for this configuration.
    pub fn label(self) -> &'static str {
        match self {
            ConfigKind::Ibm => "ibm",
            ConfigKind::EffFull => "eff-full",
            ConfigKind::Eff5Freq => "eff-5-freq",
            ConfigKind::EffRdBus => "eff-rd-bus",
            ConfigKind::EffLayoutOnly => "eff-layout-only",
        }
    }

    /// All five configurations in the paper's presentation order.
    pub fn all() -> [ConfigKind; 5] {
        [
            ConfigKind::Ibm,
            ConfigKind::EffFull,
            ConfigKind::EffRdBus,
            ConfigKind::Eff5Freq,
            ConfigKind::EffLayoutOnly,
        ]
    }
}

impl fmt::Display for ConfigKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Generates the architectures a configuration contributes for one
/// profiled benchmark. Every design flow attaches to `plan`, the
/// benchmark's shared stage plan: the five configurations place the
/// same profile, so the placement (and any repeated assembly) is
/// computed once per benchmark instead of once per configuration.
///
/// # Errors
///
/// Propagates design-flow failures ([`EvalError::Design`]).
pub fn architectures(
    kind: ConfigKind,
    profile: &CouplingProfile,
    settings: &EvalSettings,
    plan: &Arc<StagePlan>,
) -> Result<Vec<Architecture>, EvalError> {
    let base_flow =
        || DesignFlow::new().with_plan(Arc::clone(plan)).with_hardware(settings.hardware);
    match kind {
        ConfigKind::Ibm => Ok(ibm::all_baselines().to_vec()),
        ConfigKind::EffFull => {
            let flow = base_flow()
                .with_allocation_trials(settings.alloc_trials)
                .with_allocation_seed(settings.seed)
                .with_sigma_ghz(settings.sigma_ghz);
            Ok(flow.design_series(profile)?)
        }
        ConfigKind::Eff5Freq => {
            let flow = base_flow()
                .with_frequency_strategy(FrequencyStrategy::FiveFrequency)
                .with_name_prefix("eff5");
            Ok(flow.design_series(profile)?)
        }
        ConfigKind::EffRdBus => {
            // One point per sample: a seeded random bus set whose size
            // sweeps the available range, so the samples scatter across
            // the trade-off plane like the paper's orange points.
            let coords = base_flow().place(profile)?;
            let max = qpd_core::select_buses_maximal(&coords).len();
            let mut archs = Vec::new();
            for s in 0..settings.rd_bus_samples {
                let budget =
                    if max == 0 { 0 } else { 1 + s * max / settings.rd_bus_samples.max(1) };
                if budget == 0 {
                    continue;
                }
                let flow = base_flow()
                    .with_bus_strategy(BusStrategy::Random { seed: settings.seed + s as u64 })
                    .with_max_buses(Some(budget))
                    .with_allocation_trials(settings.alloc_trials)
                    .with_allocation_seed(settings.seed)
                    .with_sigma_ghz(settings.sigma_ghz)
                    .with_name_prefix(format!("effrd{s}"));
                archs.push(flow.design(profile)?);
            }
            Ok(archs)
        }
        ConfigKind::EffLayoutOnly => {
            let coords = base_flow().place(profile)?;
            let model = settings.hardware.model();
            let menu = model.pattern_frequencies_ghz();
            let band = model.allowed_band_ghz();
            let mut out = Vec::new();
            // Option A: 2-qubit buses only.
            let mut builder =
                Architecture::builder(format!("efflayout-{}q-2qbus", profile.num_qubits()));
            builder.qubits(coords.iter().copied());
            let plain = builder.build().map_err(qpd_core::DesignError::from)?;
            let freqs = pattern_frequency_plan(&plain, menu);
            out.push(
                plain.with_frequencies_in_band(freqs, band).map_err(qpd_core::DesignError::from)?,
            );
            // Option B: as many 4-qubit buses as possible.
            let mut builder =
                Architecture::builder(format!("efflayout-{}q-max4q", profile.num_qubits()));
            builder.qubits(coords.iter().copied());
            for s in qpd_core::select_buses_maximal(&coords) {
                builder.four_qubit_bus_at(s);
            }
            let dense = builder.build().map_err(qpd_core::DesignError::from)?;
            let freqs = pattern_frequency_plan(&dense, menu);
            out.push(
                dense.with_frequencies_in_band(freqs, band).map_err(qpd_core::DesignError::from)?,
            );
            Ok(out)
        }
    }
}

/// The IBM baseline bus modes, used by reports.
pub fn baseline_mode_label(mode: BusMode) -> &'static str {
    match mode {
        BusMode::TwoQubitOnly => "2-qubit buses",
        BusMode::MaxFourQubit => "max 4-qubit buses",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CouplingProfile {
        CouplingProfile::from_edges(
            6,
            &[(0, 1, 8), (1, 2, 8), (3, 4, 8), (4, 5, 8), (0, 4, 6), (1, 3, 6), (1, 4, 8)],
        )
    }

    fn quick() -> EvalSettings {
        EvalSettings::quick()
    }

    fn generate(kind: ConfigKind, settings: &EvalSettings) -> Vec<Architecture> {
        architectures(kind, &profile(), settings, &Arc::new(StagePlan::new())).unwrap()
    }

    #[test]
    fn labels() {
        assert_eq!(ConfigKind::EffFull.label(), "eff-full");
        assert_eq!(ConfigKind::all().len(), 5);
        assert_eq!(ConfigKind::Ibm.to_string(), "ibm");
    }

    #[test]
    fn ibm_contributes_four() {
        assert_eq!(generate(ConfigKind::Ibm, &quick()).len(), 4);
    }

    #[test]
    fn eff_full_series_has_bus_range() {
        let archs = generate(ConfigKind::EffFull, &quick());
        assert!(!archs.is_empty());
        assert_eq!(archs[0].four_qubit_buses().len(), 0);
        for a in &archs {
            assert!(a.frequencies().is_some());
        }
    }

    #[test]
    fn layout_only_has_two_options() {
        let archs = generate(ConfigKind::EffLayoutOnly, &quick());
        assert_eq!(archs.len(), 2);
        assert!(archs[0].four_qubit_buses().is_empty());
        assert!(archs[1].four_qubit_buses().len() >= archs[0].four_qubit_buses().len());
    }

    #[test]
    fn rd_bus_samples_are_bounded() {
        let archs = generate(ConfigKind::EffRdBus, &quick());
        assert!(archs.len() <= quick().rd_bus_samples);
        for a in &archs {
            assert!(!a.four_qubit_buses().is_empty());
        }
    }

    #[test]
    fn shared_plan_places_once_across_configurations() {
        // Satellite of the hardware refactor: the per-benchmark plan is
        // shared, so the second configuration's placement is a cache
        // hit, not a recomputation.
        let plan = Arc::new(StagePlan::new());
        let p = profile();
        architectures(ConfigKind::EffFull, &p, &quick(), &plan).unwrap();
        let misses_after_first = plan.stats().iter().map(|s| s.misses).sum::<u64>();
        architectures(ConfigKind::Eff5Freq, &p, &quick(), &plan).unwrap();
        let placement =
            plan.stats().into_iter().find(|s| s.kind == qpd_core::StageKind::Placement).unwrap();
        assert!(placement.hits > 0, "second configuration re-placed the profile");
        assert!(misses_after_first > 0);
    }

    #[test]
    fn hardware_family_reshapes_the_designs() {
        use qpd_yield::HardwareFamily;
        let fixed = generate(ConfigKind::EffLayoutOnly, &quick());
        let hh =
            generate(ConfigKind::EffLayoutOnly, &quick().with_hardware(HardwareFamily::HeavyHex));
        let (lo, hi) = HardwareFamily::HeavyHex.model().allowed_band_ghz();
        let freqs = |a: &Architecture| a.frequencies().unwrap().as_slice().to_vec();
        assert_ne!(freqs(&fixed[0]), freqs(&hh[0]), "family change left the plan unchanged");
        for f in freqs(&hh[0]) {
            assert!((lo..=hi).contains(&f), "{f} outside the heavy-hex band");
        }
    }
}
