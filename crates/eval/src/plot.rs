//! SVG scatter plots of experiment results — the graphical form of the
//! paper's Figure 10 subfigures.
//!
//! Hand-rolled SVG (no dependencies): linear X = normalized reciprocal
//! gate count, logarithmic Y = yield rate, one marker style per
//! configuration, matching the paper's presentation. Both the per-run
//! scatter ([`svg_scatter`]) and the explore-archive overlay
//! ([`svg_front_overlay`]) draw on the same `Frame`.

use std::fmt::Write as _;

use crate::configs::ConfigKind;
use crate::runner::{BenchmarkRun, DataPoint};

const WIDTH: f64 = 560.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
const PLOT_W: f64 = WIDTH - MARGIN_L - MARGIN_R;
const PLOT_H: f64 = HEIGHT - MARGIN_T - MARGIN_B;

fn color(config: ConfigKind) -> &'static str {
    match config {
        ConfigKind::Ibm => "#555555",
        ConfigKind::EffFull => "#1f77b4",
        ConfigKind::EffRdBus => "#ff7f0e",
        ConfigKind::Eff5Freq => "#2ca02c",
        ConfigKind::EffLayoutOnly => "#d62728",
    }
}

/// The shared Figure-10 plot frame: linear performance X (5% padding
/// around the data extent), log-10 yield Y floored one decade below the
/// smallest positive yield, plus the rendered chrome (title, border,
/// decade gridlines, ticks, axis labels).
struct Frame {
    x_min: f64,
    x_max: f64,
    y_floor_exp: f64,
}

/// Yield never exceeds 1, so the top decade is fixed.
const Y_TOP_EXP: f64 = 0.0;

impl Frame {
    fn new(xs: impl Iterator<Item = f64>, ys: impl Iterator<Item = f64>) -> Frame {
        let (mut x_min_data, mut x_max_data) = (f64::INFINITY, f64::NEG_INFINITY);
        for x in xs {
            x_min_data = x_min_data.min(x);
            x_max_data = x_max_data.max(x);
        }
        let span = (x_max_data - x_min_data).max(0.05);
        let min_pos = ys.filter(|&y| y > 0.0).fold(f64::INFINITY, f64::min);
        let y_floor_exp = if min_pos.is_finite() { min_pos.log10().floor() - 1.0 } else { -5.0 };
        Frame { x_min: x_min_data - 0.05 * span, x_max: x_max_data + 0.05 * span, y_floor_exp }
    }

    fn x_of(&self, v: f64) -> f64 {
        MARGIN_L + (v - self.x_min) / (self.x_max - self.x_min) * PLOT_W
    }

    /// Zero and sub-floor yields clip to the plot floor, mirroring how
    /// the paper's log-scale axes clip them.
    fn y_of(&self, y: f64) -> f64 {
        let e =
            if y > 0.0 { y.log10().clamp(self.y_floor_exp, Y_TOP_EXP) } else { self.y_floor_exp };
        MARGIN_T + (Y_TOP_EXP - e) / (Y_TOP_EXP - self.y_floor_exp) * PLOT_H
    }

    /// The SVG document opening: background, title, plot border, decade
    /// gridlines with Y tick labels, five X ticks, and both axis titles.
    /// The caller appends marks and must close with `</svg>`.
    fn open(&self, title: &str) -> String {
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = writeln!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="20" font-family="sans-serif" font-size="15" text-anchor="middle">{title}</text>"#,
            MARGIN_L + PLOT_W / 2.0,
        );
        let _ = writeln!(
            svg,
            r#"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{PLOT_W}" height="{PLOT_H}" fill="none" stroke="black" stroke-width="1"/>"#
        );
        // Y ticks: one per decade.
        let mut exp = self.y_floor_exp as i64;
        while exp <= Y_TOP_EXP as i64 {
            let y = self.y_of(10f64.powi(exp as i32));
            let _ = writeln!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{}" y2="{y:.1}" stroke="#dddddd" stroke-width="0.5"/>"##,
                MARGIN_L + PLOT_W
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="end">1e{exp}</text>"#,
                MARGIN_L - 6.0,
                y + 4.0
            );
            exp += 1;
        }
        // X ticks: five evenly spaced.
        for i in 0..=4 {
            let v = self.x_min + (self.x_max - self.x_min) * i as f64 / 4.0;
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{v:.2}</text>"#,
                self.x_of(v),
                MARGIN_T + PLOT_H + 18.0
            );
        }
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">normalized reciprocal of gate count</text>"#,
            MARGIN_L + PLOT_W / 2.0,
            HEIGHT - 12.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">yield rate</text>"#,
            MARGIN_T + PLOT_H / 2.0,
            MARGIN_T + PLOT_H / 2.0
        );
        svg
    }
}

/// Renders one benchmark run as a standalone SVG document.
///
/// Zero yields (no successes in the Monte Carlo budget) are drawn on the
/// plot floor with hollow markers, mirroring how the paper's log-scale
/// axes clip them.
pub fn svg_scatter(run: &BenchmarkRun) -> String {
    let points = &run.points;
    let frame =
        Frame::new(points.iter().map(|p| p.normalized_perf), points.iter().map(|p| p.yield_rate));
    let mut svg = frame.open(&format!("{} ({} qubits)", run.benchmark, run.qubits));

    // Points.
    let draw_point = |svg: &mut String, p: &DataPoint| {
        let x = frame.x_of(p.normalized_perf);
        let y = frame.y_of(p.yield_rate);
        let fill = if p.yield_rate > 0.0 { color(p.config) } else { "none" };
        let _ = writeln!(
            svg,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="4" fill="{fill}" stroke="{}" stroke-width="1.2"><title>{}: gates={} yield={:.3e}</title></circle>"#,
            color(p.config),
            p.arch,
            p.total_gates,
            p.yield_rate
        );
    };
    for p in points {
        draw_point(&mut svg, p);
    }

    // Legend.
    for (i, kind) in ConfigKind::all().iter().enumerate() {
        let y = MARGIN_T + 14.0 + 20.0 * i as f64;
        let x = MARGIN_L + PLOT_W + 14.0;
        let _ = writeln!(
            svg,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="4" fill="{0}" stroke="{0}"/>"#,
            color(*kind)
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12">{}</text>"#,
            x + 10.0,
            y + 4.0,
            kind.label()
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// One explore-archive point projected onto the Figure-10 axes for the
/// front overlay: performance (normalized reciprocal gate count, larger
/// is better) against Monte Carlo yield rate.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayPoint {
    /// Label shown in the marker tooltip (the candidate's architecture
    /// name).
    pub arch: String,
    /// Normalized reciprocal gate count (best archive gate count over
    /// this point's gate count — 1.0 is the best-performing candidate).
    pub perf: f64,
    /// Monte Carlo yield rate in `[0, 1]`.
    pub yield_rate: f64,
    /// Whether the point is on the run's 4-objective Pareto front.
    pub on_front: bool,
}

/// Renders a design-space exploration archive as a Figure-10 style
/// overlay: the whole archive as hollow gray markers, the Pareto-front
/// points highlighted and chained (in performance order) by a dashed
/// guide line. Same `Frame` as [`svg_scatter`]: linear performance,
/// log yield with zero-yield points clipped to the plot floor.
pub fn svg_front_overlay(benchmark: &str, points: &[OverlayPoint]) -> String {
    const FRONT_COLOR: &str = "#1f77b4";
    const ARCHIVE_COLOR: &str = "#999999";
    let frame = Frame::new(points.iter().map(|p| p.perf), points.iter().map(|p| p.yield_rate));
    let mut svg = frame.open(&format!("{benchmark} — explored design space"));

    // Front guide line, performance-ordered (the stable sort keeps the
    // path deterministic for equal-perf points).
    let mut front: Vec<&OverlayPoint> = points.iter().filter(|p| p.on_front).collect();
    front.sort_by(|a, b| a.perf.partial_cmp(&b.perf).expect("finite perf"));
    if front.len() >= 2 {
        let path: Vec<String> = front
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let cmd = if i == 0 { 'M' } else { 'L' };
                format!("{cmd}{:.1} {:.1}", frame.x_of(p.perf), frame.y_of(p.yield_rate))
            })
            .collect();
        let _ = writeln!(
            svg,
            r#"<path d="{}" fill="none" stroke="{FRONT_COLOR}" stroke-width="1.2" stroke-dasharray="5 3"/>"#,
            path.join(" ")
        );
    }

    // Archive first (underneath), then front markers on top.
    for p in points.iter().filter(|p| !p.on_front) {
        let _ = writeln!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="none" stroke="{ARCHIVE_COLOR}" stroke-width="1"><title>{}: perf={:.3} yield={:.3e}</title></circle>"#,
            frame.x_of(p.perf),
            frame.y_of(p.yield_rate),
            p.arch,
            p.perf,
            p.yield_rate
        );
    }
    for p in &front {
        let fill = if p.yield_rate > 0.0 { FRONT_COLOR } else { "none" };
        let _ = writeln!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="4.5" fill="{fill}" stroke="{FRONT_COLOR}" stroke-width="1.4"><title>{}: perf={:.3} yield={:.3e}</title></circle>"#,
            frame.x_of(p.perf),
            frame.y_of(p.yield_rate),
            p.arch,
            p.perf,
            p.yield_rate
        );
    }

    // Legend.
    let lx = MARGIN_L + PLOT_W + 14.0;
    let _ = writeln!(
        svg,
        r#"<circle cx="{lx:.1}" cy="{:.1}" r="4.5" fill="{FRONT_COLOR}" stroke="{FRONT_COLOR}"/><text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12">Pareto front</text>"#,
        MARGIN_T + 14.0,
        lx + 10.0,
        MARGIN_T + 18.0
    );
    let _ = writeln!(
        svg,
        r#"<circle cx="{lx:.1}" cy="{:.1}" r="3" fill="none" stroke="{ARCHIVE_COLOR}"/><text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12">archive</text>"#,
        MARGIN_T + 34.0,
        lx + 10.0,
        MARGIN_T + 38.0
    );
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> BenchmarkRun {
        let mk = |config, perf: f64, y: f64| DataPoint {
            config,
            arch: format!("{config}-arch"),
            qubits: 8,
            four_qubit_buses: 0,
            coupling_edges: 10,
            total_gates: 100,
            swaps: 2,
            yield_rate: y,
            normalized_perf: perf,
        };
        BenchmarkRun {
            benchmark: "demo".into(),
            qubits: 8,
            points: vec![
                mk(ConfigKind::Ibm, 1.0, 1.8e-2),
                mk(ConfigKind::EffFull, 1.1, 2.0e-1),
                mk(ConfigKind::EffFull, 1.2, 5.0e-2),
                mk(ConfigKind::Eff5Freq, 1.1, 0.0),
            ],
        }
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = svg_scatter(&run());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 4 + 5, "4 data points + 5 legend dots");
        assert!(svg.contains("demo (8 qubits)"));
        assert!(svg.contains("eff-full"));
    }

    #[test]
    fn zero_yield_is_hollow() {
        let svg = svg_scatter(&run());
        assert!(svg.contains(r#"fill="none""#));
    }

    #[test]
    fn coordinates_stay_inside_viewbox() {
        let svg = svg_scatter(&run());
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x), "x = {x}");
        }
        for cap in svg.split("cy=\"").skip(1) {
            let y: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=HEIGHT).contains(&y), "y = {y}");
        }
    }

    fn overlay_points() -> Vec<OverlayPoint> {
        let mk = |arch: &str, perf: f64, y: f64, on_front: bool| OverlayPoint {
            arch: arch.into(),
            perf,
            yield_rate: y,
            on_front,
        };
        vec![
            mk("eff-6q-b0", 0.8, 0.4, true),
            mk("eff-6q-b2", 1.0, 0.05, true),
            mk("eff-6q-b1", 0.9, 0.02, false),
            mk("eff-6q-b3", 0.95, 0.0, false),
        ]
    }

    #[test]
    fn overlay_draws_all_points_and_a_front_path() {
        let svg = svg_front_overlay("sym6_145", &overlay_points());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 4 data markers + 2 legend markers.
        assert_eq!(svg.matches("<circle").count(), 6);
        // Two front points chained by one path.
        assert_eq!(svg.matches("<path").count(), 1);
        assert!(svg.contains("sym6_145"));
        assert!(svg.contains("Pareto front"));
    }

    #[test]
    fn overlay_front_path_needs_two_points() {
        let mut pts = overlay_points();
        for p in &mut pts[1..] {
            p.on_front = false;
        }
        let svg = svg_front_overlay("z4_268", &pts);
        assert_eq!(svg.matches("<path").count(), 0, "singleton front draws no path");
    }

    #[test]
    fn overlay_coordinates_stay_inside_viewbox() {
        let svg = svg_front_overlay("demo", &overlay_points());
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x), "x = {x}");
        }
        for cap in svg.split("cy=\"").skip(1) {
            let y: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=HEIGHT).contains(&y), "y = {y}");
        }
    }

    #[test]
    fn scatter_and_overlay_share_the_frame() {
        // Identical data extents produce identical frame chrome: the
        // gridlines, ticks, and axis labels of the two plot kinds must
        // come from the same geometry.
        let svg_a = svg_scatter(&run());
        let svg_b = svg_front_overlay(
            "demo",
            &run()
                .points
                .iter()
                .map(|p| OverlayPoint {
                    arch: p.arch.clone(),
                    perf: p.normalized_perf,
                    yield_rate: p.yield_rate,
                    on_front: false,
                })
                .collect::<Vec<_>>(),
        );
        let chrome = |svg: &str| {
            svg.lines()
                .filter(|l| l.starts_with("<line") || l.contains("1e-") || l.contains("axis"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(chrome(&svg_a), chrome(&svg_b));
    }

    #[test]
    fn log_axis_orders_yields() {
        let svg = svg_scatter(&run());
        // Higher yield must be drawn higher (smaller cy). Extract data
        // point circles in order: ibm (1.8e-2) then eff-full (2.0e-1).
        let cys: Vec<f64> = svg
            .split("<circle cx=\"")
            .skip(1)
            .take(2)
            .map(|s| {
                let cy = s.split("cy=\"").nth(1).unwrap();
                cy.split('"').next().unwrap().parse().unwrap()
            })
            .collect();
        assert!(cys[1] < cys[0], "2e-1 should be above 1.8e-2: {cys:?}");
    }
}
