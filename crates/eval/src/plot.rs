//! SVG scatter plots of experiment results — the graphical form of the
//! paper's Figure 10 subfigures.
//!
//! Hand-rolled SVG (no dependencies): linear X = normalized reciprocal
//! gate count, logarithmic Y = yield rate, one marker style per
//! configuration, matching the paper's presentation.

use std::fmt::Write as _;

use crate::configs::ConfigKind;
use crate::runner::{BenchmarkRun, DataPoint};

const WIDTH: f64 = 560.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

fn color(config: ConfigKind) -> &'static str {
    match config {
        ConfigKind::Ibm => "#555555",
        ConfigKind::EffFull => "#1f77b4",
        ConfigKind::EffRdBus => "#ff7f0e",
        ConfigKind::Eff5Freq => "#2ca02c",
        ConfigKind::EffLayoutOnly => "#d62728",
    }
}

/// Renders one benchmark run as a standalone SVG document.
///
/// Zero yields (no successes in the Monte Carlo budget) are drawn on the
/// plot floor with hollow markers, mirroring how the paper's log-scale
/// axes clip them.
pub fn svg_scatter(run: &BenchmarkRun) -> String {
    let points = &run.points;
    let x_min_data = points.iter().map(|p| p.normalized_perf).fold(f64::INFINITY, f64::min);
    let x_max_data = points.iter().map(|p| p.normalized_perf).fold(f64::NEG_INFINITY, f64::max);
    let span = (x_max_data - x_min_data).max(0.05);
    let (x_min, x_max) = (x_min_data - 0.05 * span, x_max_data + 0.05 * span);

    // Y (log10): floor at one decade below the smallest positive yield.
    let min_pos =
        points.iter().map(|p| p.yield_rate).filter(|&y| y > 0.0).fold(f64::INFINITY, f64::min);
    let y_floor_exp = if min_pos.is_finite() { min_pos.log10().floor() - 1.0 } else { -5.0 };
    let y_top_exp = 0.0; // yield <= 1

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let x_of = |v: f64| MARGIN_L + (v - x_min) / (x_max - x_min) * plot_w;
    let y_of = |y: f64| {
        let e = if y > 0.0 { y.log10().clamp(y_floor_exp, y_top_exp) } else { y_floor_exp };
        MARGIN_T + (y_top_exp - e) / (y_top_exp - y_floor_exp) * plot_h
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    );
    let _ = writeln!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="20" font-family="sans-serif" font-size="15" text-anchor="middle">{} ({} qubits)</text>"#,
        MARGIN_L + plot_w / 2.0,
        run.benchmark,
        run.qubits
    );

    // Axes.
    let _ = writeln!(
        svg,
        r#"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="black" stroke-width="1"/>"#
    );
    // Y ticks: one per decade.
    let mut exp = y_floor_exp as i64;
    while exp <= y_top_exp as i64 {
        let y = y_of(10f64.powi(exp as i32));
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{}" y2="{y:.1}" stroke="#dddddd" stroke-width="0.5"/>"##,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="end">1e{exp}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0
        );
        exp += 1;
    }
    // X ticks: five evenly spaced.
    for i in 0..=4 {
        let v = x_min + (x_max - x_min) * i as f64 / 4.0;
        let x = x_of(v);
        let _ = writeln!(
            svg,
            r#"<text x="{x:.1}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{v:.2}</text>"#,
            MARGIN_T + plot_h + 18.0
        );
    }
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">normalized reciprocal of gate count</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 12.0
    );
    let _ = writeln!(
        svg,
        r#"<text x="16" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">yield rate</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0
    );

    // Points.
    let draw_point = |svg: &mut String, p: &DataPoint| {
        let x = x_of(p.normalized_perf);
        let y = y_of(p.yield_rate);
        let fill = if p.yield_rate > 0.0 { color(p.config) } else { "none" };
        let _ = writeln!(
            svg,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="4" fill="{fill}" stroke="{}" stroke-width="1.2"><title>{}: gates={} yield={:.3e}</title></circle>"#,
            color(p.config),
            p.arch,
            p.total_gates,
            p.yield_rate
        );
    };
    for p in points {
        draw_point(&mut svg, p);
    }

    // Legend.
    for (i, kind) in ConfigKind::all().iter().enumerate() {
        let y = MARGIN_T + 14.0 + 20.0 * i as f64;
        let x = MARGIN_L + plot_w + 14.0;
        let _ = writeln!(
            svg,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="4" fill="{0}" stroke="{0}"/>"#,
            color(*kind)
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12">{}</text>"#,
            x + 10.0,
            y + 4.0,
            kind.label()
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> BenchmarkRun {
        let mk = |config, perf: f64, y: f64| DataPoint {
            config,
            arch: format!("{config}-arch"),
            qubits: 8,
            four_qubit_buses: 0,
            coupling_edges: 10,
            total_gates: 100,
            swaps: 2,
            yield_rate: y,
            normalized_perf: perf,
        };
        BenchmarkRun {
            benchmark: "demo".into(),
            qubits: 8,
            points: vec![
                mk(ConfigKind::Ibm, 1.0, 1.8e-2),
                mk(ConfigKind::EffFull, 1.1, 2.0e-1),
                mk(ConfigKind::EffFull, 1.2, 5.0e-2),
                mk(ConfigKind::Eff5Freq, 1.1, 0.0),
            ],
        }
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = svg_scatter(&run());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 4 + 5, "4 data points + 5 legend dots");
        assert!(svg.contains("demo (8 qubits)"));
        assert!(svg.contains("eff-full"));
    }

    #[test]
    fn zero_yield_is_hollow() {
        let svg = svg_scatter(&run());
        assert!(svg.contains(r#"fill="none""#));
    }

    #[test]
    fn coordinates_stay_inside_viewbox() {
        let svg = svg_scatter(&run());
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x), "x = {x}");
        }
        for cap in svg.split("cy=\"").skip(1) {
            let y: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=HEIGHT).contains(&y), "y = {y}");
        }
    }

    #[test]
    fn log_axis_orders_yields() {
        let svg = svg_scatter(&run());
        // Higher yield must be drawn higher (smaller cy). Extract data
        // point circles in order: ibm (1.8e-2) then eff-full (2.0e-1).
        let cys: Vec<f64> = svg
            .split("<circle cx=\"")
            .skip(1)
            .take(2)
            .map(|s| {
                let cy = s.split("cy=\"").nth(1).unwrap();
                cy.split('"').next().unwrap().parse().unwrap()
            })
            .collect();
        assert!(cys[1] < cys[0], "2e-1 should be above 1.8e-2: {cys:?}");
    }
}
