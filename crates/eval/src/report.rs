//! Table and CSV rendering of experiment results.

use std::fmt::Write as _;

use crate::runner::BenchmarkRun;

/// Renders one benchmark's points as an aligned text table (the tabular
/// form of one Figure 10 subfigure).
pub fn run_table(run: &BenchmarkRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} ({} logical qubits)", run.benchmark, run.qubits);
    let _ = writeln!(
        out,
        "{:<15} {:<22} {:>3} {:>5} {:>6} {:>7} {:>6} {:>10} {:>9}",
        "config", "architecture", "q", "4q", "edges", "gates", "swaps", "yield", "norm-perf"
    );
    for p in &run.points {
        let _ = writeln!(
            out,
            "{:<15} {:<22} {:>3} {:>5} {:>6} {:>7} {:>6} {:>10.4e} {:>9.4}",
            p.config.label(),
            p.arch,
            p.qubits,
            p.four_qubit_buses,
            p.coupling_edges,
            p.total_gates,
            p.swaps,
            p.yield_rate,
            p.normalized_perf,
        );
    }
    out
}

/// CSV header matching [`run_csv`] rows.
pub const CSV_HEADER: &str =
    "benchmark,config,architecture,qubits,four_qubit_buses,coupling_edges,total_gates,swaps,yield,normalized_perf";

/// Renders one benchmark's points as CSV rows (without header).
pub fn run_csv(run: &BenchmarkRun) -> String {
    let mut out = String::new();
    for p in &run.points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            run.benchmark,
            p.config.label(),
            p.arch,
            p.qubits,
            p.four_qubit_buses,
            p.coupling_edges,
            p.total_gates,
            p.swaps,
            p.yield_rate,
            p.normalized_perf,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::ConfigKind;
    use crate::runner::DataPoint;

    fn run() -> BenchmarkRun {
        BenchmarkRun {
            benchmark: "demo".into(),
            qubits: 4,
            points: vec![DataPoint {
                config: ConfigKind::Ibm,
                arch: "ibm-16q-2x8-2qbus".into(),
                qubits: 16,
                four_qubit_buses: 0,
                coupling_edges: 22,
                total_gates: 100,
                swaps: 3,
                yield_rate: 0.125,
                normalized_perf: 1.0,
            }],
        }
    }

    #[test]
    fn table_contains_values() {
        let t = run_table(&run());
        assert!(t.contains("demo"));
        assert!(t.contains("ibm-16q-2x8-2qbus"));
        assert!(t.contains("1.2500e-1"));
    }

    #[test]
    fn csv_row_shape() {
        let csv = run_csv(&run());
        let fields: Vec<&str> = csv.trim().split(',').collect();
        assert_eq!(fields.len(), CSV_HEADER.split(',').count());
        assert_eq!(fields[0], "demo");
        assert_eq!(fields[1], "ibm");
    }
}
