//! Per-benchmark experiment execution.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use qpd_circuit::Circuit;
use qpd_core::{DesignError, StagePlan};
use qpd_mapping::{MappingError, SabreRouter};
use qpd_profile::CouplingProfile;
use qpd_topology::Architecture;
use qpd_yield::{HardwareFamily, YieldError, YieldSimulator};

use crate::configs::{architectures, ConfigKind};

/// Tunable experiment parameters; defaults follow the paper's setup
/// (§5.1): 10,000 yield trials, sigma = 30 MHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSettings {
    /// Monte Carlo trials per yield estimate.
    pub yield_trials: u64,
    /// Monte Carlo trials inside frequency allocation.
    pub alloc_trials: usize,
    /// Fabrication precision in GHz.
    pub sigma_ghz: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of random-bus-selection samples (`eff-rd-bus`).
    pub rd_bus_samples: usize,
    /// Hardware family of the run: the `eff-*` flows design for its
    /// band and constraints, and the yield simulator applies its
    /// collision model to every chip (the IBM baselines keep their
    /// fixed layouts and frequencies). The default family reproduces
    /// the pre-hardware-layer harness bit-for-bit.
    pub hardware: HardwareFamily,
}

impl Default for EvalSettings {
    fn default() -> Self {
        EvalSettings {
            yield_trials: 10_000,
            alloc_trials: 8_000,
            sigma_ghz: 0.030,
            seed: 0,
            rd_bus_samples: 5,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        }
    }
}

impl EvalSettings {
    /// Reduced-accuracy settings for tests and smoke runs.
    pub fn quick() -> Self {
        EvalSettings {
            yield_trials: 2_000,
            alloc_trials: 200,
            sigma_ghz: 0.030,
            seed: 0,
            rd_bus_samples: 3,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        }
    }

    /// The same settings targeting another hardware family.
    pub fn with_hardware(mut self, hardware: HardwareFamily) -> Self {
        self.hardware = hardware;
        self
    }
}

/// One architecture evaluated on one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Which configuration produced the architecture.
    pub config: ConfigKind,
    /// Architecture name.
    pub arch: String,
    /// Physical qubits on the chip.
    pub qubits: usize,
    /// Number of 4-qubit buses.
    pub four_qubit_buses: usize,
    /// Total coupling edges (pairs supporting a two-qubit gate).
    pub coupling_edges: usize,
    /// Post-mapping gate count (SWAP = 3 CX) — the performance metric.
    pub total_gates: usize,
    /// SWAPs inserted by routing.
    pub swaps: usize,
    /// Monte Carlo yield estimate.
    pub yield_rate: f64,
    /// Reciprocal gate count normalized to IBM baseline (1) — Figure 10's
    /// X axis (larger is better).
    pub normalized_perf: f64,
}

/// All data points for one benchmark (one Figure 10 subfigure).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub benchmark: String,
    /// Logical qubits in the program.
    pub qubits: usize,
    /// Every evaluated point.
    pub points: Vec<DataPoint>,
}

impl BenchmarkRun {
    /// The points of one configuration, in generation order.
    pub fn of_config(&self, config: ConfigKind) -> Vec<&DataPoint> {
        self.points.iter().filter(|p| p.config == config).collect()
    }

    /// The IBM baseline point with the given index (1-4, Figure 9 order).
    pub fn ibm_baseline(&self, index: usize) -> Option<&DataPoint> {
        self.of_config(ConfigKind::Ibm).into_iter().nth(index.checked_sub(1)?)
    }
}

/// Error running an experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum EvalError {
    /// Unknown benchmark name.
    UnknownBenchmark(qpd_benchmarks::UnknownBenchmark),
    /// Design flow failure.
    Design(DesignError),
    /// Routing failure.
    Mapping(MappingError),
    /// Yield simulation failure.
    Yield(YieldError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownBenchmark(e) => write!(f, "{e}"),
            EvalError::Design(e) => write!(f, "design flow failed: {e}"),
            EvalError::Mapping(e) => write!(f, "routing failed: {e}"),
            EvalError::Yield(e) => write!(f, "yield simulation failed: {e}"),
        }
    }
}

impl Error for EvalError {}

impl From<qpd_benchmarks::UnknownBenchmark> for EvalError {
    fn from(e: qpd_benchmarks::UnknownBenchmark) -> Self {
        EvalError::UnknownBenchmark(e)
    }
}

impl From<DesignError> for EvalError {
    fn from(e: DesignError) -> Self {
        EvalError::Design(e)
    }
}

impl From<MappingError> for EvalError {
    fn from(e: MappingError) -> Self {
        EvalError::Mapping(e)
    }
}

impl From<YieldError> for EvalError {
    fn from(e: YieldError) -> Self {
        EvalError::Yield(e)
    }
}

/// Runs the five configurations on one benchmark, producing a Figure 10
/// subfigure's worth of data.
///
/// # Errors
///
/// Returns the first failure from benchmark construction, the design
/// flow, routing, or yield simulation.
pub fn run_benchmark(name: &str, settings: &EvalSettings) -> Result<BenchmarkRun, EvalError> {
    let circuit = qpd_benchmarks::build(name)?;
    run_circuit(name, &circuit, settings)
}

/// Runs the five configurations on an arbitrary circuit (used by
/// examples to design chips for user programs).
///
/// Architecture generation fans out over the configurations and point
/// evaluation (routing + yield simulation) over the individual
/// architectures, both on the shared `qpd-par` pool. Results are
/// assembled in configuration order, so the output is identical to the
/// serial iteration for any thread count.
///
/// # Errors
///
/// Same as [`run_benchmark`].
pub fn run_circuit(
    name: &str,
    circuit: &Circuit,
    settings: &EvalSettings,
) -> Result<BenchmarkRun, EvalError> {
    let profile = CouplingProfile::of(circuit);
    let sim = YieldSimulator::new()
        .with_trials(settings.yield_trials)
        .with_sigma_ghz(settings.sigma_ghz)
        .with_seed(settings.seed)
        .with_hardware(settings.hardware);

    // Normalization denominator: IBM baseline (1) = 16Q 2x8, 2-qubit
    // buses (Figure 10 normalizes performance so baseline (1) sits at 1).
    let baseline1 = qpd_topology::ibm::ibm_16q_2x8(qpd_topology::BusMode::TwoQubitOnly);
    let baseline_gates = route_gates(circuit, &baseline1)?;

    // One stage plan for the whole benchmark: every configuration's
    // design flow attaches to it, so the placement the configurations
    // share is computed once and the assembly cache is common across
    // the eff-* families. Stages are pure, so sharing is result-neutral.
    let plan = Arc::new(StagePlan::new());
    let kinds = ConfigKind::all();
    let generated =
        qpd_par::par_map(&kinds, |&kind| architectures(kind, &profile, settings, &plan));
    let mut flat: Vec<(ConfigKind, Architecture)> = Vec::new();
    for (kind, archs) in kinds.iter().zip(generated) {
        for arch in archs? {
            flat.push((*kind, arch));
        }
    }

    let evaluated = qpd_par::par_map(&flat, |(kind, arch)| -> Result<DataPoint, EvalError> {
        let (total_gates, swaps) = route_gates_swaps(circuit, arch)?;
        let estimate = sim.estimate(arch)?;
        Ok(DataPoint {
            config: *kind,
            arch: arch.name().to_string(),
            qubits: arch.num_qubits(),
            four_qubit_buses: arch.four_qubit_buses().len(),
            coupling_edges: arch.coupling_edges().len(),
            total_gates,
            swaps,
            yield_rate: estimate.rate(),
            normalized_perf: baseline_gates as f64 / total_gates as f64,
        })
    });
    let points = evaluated.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(BenchmarkRun { benchmark: name.to_string(), qubits: circuit.num_qubits(), points })
}

fn route_gates(circuit: &Circuit, arch: &Architecture) -> Result<usize, EvalError> {
    Ok(route_gates_swaps(circuit, arch)?.0)
}

fn route_gates_swaps(circuit: &Circuit, arch: &Architecture) -> Result<(usize, usize), EvalError> {
    let mapped = SabreRouter::new(arch).route(circuit)?;
    let stats = mapped.stats();
    Ok((stats.total_gates, stats.swaps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_of_small_benchmark() {
        let run = run_benchmark("sym6_145", &EvalSettings::quick()).unwrap();
        assert_eq!(run.qubits, 7);
        // All five configs contributed points.
        for kind in ConfigKind::all() {
            assert!(
                !run.of_config(kind).is_empty() || kind == ConfigKind::EffRdBus,
                "{kind} contributed nothing"
            );
        }
        // IBM baselines are ordered (1)..(4).
        let b1 = run.ibm_baseline(1).unwrap();
        assert_eq!(b1.arch, "ibm-16q-2x8-2qbus");
        assert!((b1.normalized_perf - 1.0).abs() < 1e-12, "baseline (1) defines 1.0");
        // Yields are probabilities.
        for p in &run.points {
            assert!((0.0..=1.0).contains(&p.yield_rate), "{}", p.arch);
            assert!(p.total_gates > 0);
        }
    }

    #[test]
    fn hardware_setting_redesigns_eff_but_keeps_ibm_layouts() {
        let fixed = run_benchmark("sym6_145", &EvalSettings::quick()).unwrap();
        let tc = run_benchmark(
            "sym6_145",
            &EvalSettings::quick().with_hardware(HardwareFamily::TunableCoupler),
        )
        .unwrap();
        // IBM chips are fixed layouts: routing is untouched by the
        // family (yield may move — the collision model differs).
        let b1f = fixed.ibm_baseline(1).unwrap();
        let b1t = tc.ibm_baseline(1).unwrap();
        assert_eq!(b1f.total_gates, b1t.total_gates);
        assert_eq!(b1f.arch, b1t.arch);
        // The eff flows design for the family: names carry its suffix.
        let eff = tc.of_config(ConfigKind::EffFull);
        assert!(!eff.is_empty());
        assert!(
            eff.iter().all(|p| p.arch.contains("-tc-")),
            "eff-full designs missing the family suffix"
        );
        for p in &tc.points {
            assert!((0.0..=1.0).contains(&p.yield_rate), "{}", p.arch);
        }
    }

    #[test]
    fn unknown_benchmark_error() {
        let err = run_benchmark("nope", &EvalSettings::quick()).unwrap_err();
        assert!(matches!(err, EvalError::UnknownBenchmark(_)));
    }

    #[test]
    fn eff_full_dominates_somewhere() {
        // The headline claim, on a small benchmark with reduced trials:
        // some eff-full design should have both higher yield and at
        // worst marginally lower perf than IBM's 16Q 4-bus baseline.
        let run = run_benchmark("sym6_145", &EvalSettings::quick()).unwrap();
        let b2 = run.ibm_baseline(2).unwrap();
        let best_yield = run
            .of_config(ConfigKind::EffFull)
            .into_iter()
            .map(|p| p.yield_rate)
            .fold(0.0f64, f64::max);
        assert!(
            best_yield > b2.yield_rate,
            "eff-full best yield {best_yield} vs ibm(2) {}",
            b2.yield_rate
        );
    }
}
