//! A greedy shortest-path baseline router.
//!
//! For every blocked two-qubit gate, this router walks one operand along
//! a shortest path toward the other, inserting SWAPs until the pair is
//! adjacent. It makes no lookahead decisions, so it upper-bounds the
//! routing cost a reasonable compiler would produce; SABRE should beat or
//! match it nearly always, which tests assert.

use qpd_circuit::{Circuit, Gate, Qubit};
use qpd_topology::Architecture;

use crate::error::MappingError;
use crate::initial::InitialMapping;
use crate::sabre::MappedCircuit;

/// Greedy shortest-path router bound to one architecture.
#[derive(Debug, Clone)]
pub struct GreedyRouter<'a> {
    arch: &'a Architecture,
    dist: Vec<Vec<u32>>,
    initial: InitialMapping,
}

impl<'a> GreedyRouter<'a> {
    /// Creates a greedy router with a degree-matched initial mapping.
    pub fn new(arch: &'a Architecture) -> Self {
        GreedyRouter { arch, dist: arch.distance_matrix(), initial: InitialMapping::DegreeMatched }
    }

    /// Overrides the initial mapping strategy.
    pub fn with_initial(mut self, initial: InitialMapping) -> Self {
        self.initial = initial;
        self
    }

    /// Routes a circuit gate by gate.
    ///
    /// # Errors
    ///
    /// Same failure cases as [`crate::SabreRouter::route`].
    pub fn route(&self, circuit: &Circuit) -> Result<MappedCircuit, MappingError> {
        if circuit.num_qubits() > self.arch.num_qubits() {
            return Err(MappingError::CircuitTooWide {
                logical: circuit.num_qubits(),
                physical: self.arch.num_qubits(),
            });
        }
        if !self.arch.is_connected() {
            return Err(MappingError::DisconnectedArchitecture);
        }
        let n_phys = self.arch.num_qubits();
        let initial = self.initial.build(circuit, self.arch);
        let mut layout = initial.clone();
        let mut physical = Circuit::new(n_phys);
        let mut swaps = 0usize;

        for inst in circuit.iter() {
            if inst.gate().is_unitary() && inst.qubits().len() > 2 {
                return Err(MappingError::UnsupportedGate { gate: inst.gate().name() });
            }
            if inst.gate().is_unitary() && inst.qubits().len() == 2 {
                let (a, b) = inst.qubit_pair().expect("two-qubit gate");
                // Walk a's occupant toward b until adjacent.
                loop {
                    let pa = layout.phys_of_log(a.index());
                    let pb = layout.phys_of_log(b.index());
                    if self.dist[pa][pb] == 1 {
                        break;
                    }
                    let next = self
                        .arch
                        .neighbors(pa)
                        .iter()
                        .copied()
                        .min_by_key(|&nb| (self.dist[nb][pb], nb))
                        .expect("connected architecture");
                    physical
                        .push(Gate::Swap, &[Qubit::from(pa), Qubit::from(next)])
                        .expect("swap on valid qubits");
                    layout.swap_physical(pa, next);
                    swaps += 1;
                }
            }
            let mapped: Vec<Qubit> =
                inst.qubits().iter().map(|q| Qubit::from(layout.phys_of_log(q.index()))).collect();
            physical.push(inst.gate().clone(), &mapped).expect("mapped instruction is valid");
        }

        Ok(MappedCircuit::new(physical, initial, layout, circuit.gate_count(), swaps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabre::SabreRouter;
    use crate::verify::verify_mapped;
    use qpd_circuit::random::{random_circuit, RandomCircuitSpec};
    use qpd_topology::{ibm, Architecture, BusMode};

    fn line(n: i32) -> Architecture {
        let mut b = Architecture::builder(format!("line{n}"));
        for c in 0..n {
            b.qubit(0, c);
        }
        b.build().unwrap()
    }

    #[test]
    fn routes_and_verifies() {
        let arch = line(5);
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: 5,
            num_gates: 60,
            two_qubit_fraction: 0.5,
            seed: 21,
        });
        let mapped = GreedyRouter::new(&arch).route(&c).unwrap();
        verify_mapped(&c, &mapped, &arch).unwrap();
    }

    #[test]
    fn sabre_beats_or_matches_greedy_on_average() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let mut greedy_total = 0usize;
        let mut sabre_total = 0usize;
        for seed in 0..4 {
            let c = random_circuit(&RandomCircuitSpec {
                num_qubits: 16,
                num_gates: 150,
                two_qubit_fraction: 0.5,
                seed: 40 + seed,
            });
            greedy_total += GreedyRouter::new(&arch).route(&c).unwrap().stats().total_gates;
            sabre_total += SabreRouter::new(&arch).route(&c).unwrap().stats().total_gates;
        }
        assert!(
            sabre_total <= greedy_total,
            "sabre {sabre_total} should not lose to greedy {greedy_total}"
        );
    }

    #[test]
    fn adjacent_only_circuit_needs_no_swaps() {
        let arch = line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 1);
        let mapped =
            GreedyRouter::new(&arch).with_initial(InitialMapping::Trivial).route(&c).unwrap();
        assert_eq!(mapped.swap_count(), 0);
    }

    #[test]
    fn error_paths() {
        let arch = line(2);
        assert!(GreedyRouter::new(&arch).route(&Circuit::new(5)).is_err());
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let mut b = Architecture::builder("disc");
        b.qubit(0, 0).qubit(9, 9);
        let disc = b.build().unwrap();
        assert!(matches!(
            GreedyRouter::new(&disc).route(&c),
            Err(MappingError::DisconnectedArchitecture)
        ));
    }
}
