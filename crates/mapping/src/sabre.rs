//! The SABRE routing algorithm (Li, Ding, Xie, ASPLOS 2019).

use std::collections::VecDeque;

use qpd_circuit::dag::DagCursor;
use qpd_circuit::{Circuit, Gate, GateDag, Instruction, Qubit};
use qpd_topology::Architecture;

use crate::error::MappingError;
use crate::initial::InitialMapping;
use crate::layout::Layout;
use crate::stats::MappingStats;

/// Tunable SABRE parameters; defaults follow the published algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SabreConfig {
    /// Maximum number of two-qubit gates in the lookahead extended set.
    pub extended_set_size: usize,
    /// Weight of the extended set in the heuristic score.
    pub extended_set_weight: f64,
    /// Additive decay applied to a physical qubit each time it swaps.
    pub decay_delta: f64,
    /// Decay values reset after this many consecutive SWAP insertions.
    pub decay_reset_interval: usize,
    /// Forward/backward refinement rounds before the final forward pass.
    pub reverse_traversal_rounds: usize,
    /// Initial mapping strategy seeding the refinement.
    pub initial_mapping: InitialMapping,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_delta: 0.001,
            decay_reset_interval: 5,
            reverse_traversal_rounds: 2,
            initial_mapping: InitialMapping::DegreeMatched,
        }
    }
}

/// A routed circuit: the physical-qubit circuit with inserted SWAPs, the
/// layouts before and after execution, and cost statistics.
#[derive(Debug, Clone)]
pub struct MappedCircuit {
    physical: Circuit,
    initial_layout: Layout,
    final_layout: Layout,
    original_gates: usize,
    swaps: usize,
}

impl MappedCircuit {
    pub(crate) fn new(
        physical: Circuit,
        initial_layout: Layout,
        final_layout: Layout,
        original_gates: usize,
        swaps: usize,
    ) -> Self {
        MappedCircuit { physical, initial_layout, final_layout, original_gates, swaps }
    }

    /// The routed circuit over physical qubits (SWAPs kept explicit).
    pub fn physical_circuit(&self) -> &Circuit {
        &self.physical
    }

    /// The logical-to-physical layout before the first gate.
    pub fn initial_layout(&self) -> &Layout {
        &self.initial_layout
    }

    /// The layout after the last gate (differs from the initial layout by
    /// the net effect of all SWAPs).
    pub fn final_layout(&self) -> &Layout {
        &self.final_layout
    }

    /// Number of SWAPs inserted.
    pub fn swap_count(&self) -> usize {
        self.swaps
    }

    /// Cost statistics (`total_gates` is the paper's performance metric).
    pub fn stats(&self) -> MappingStats {
        MappingStats::new(self.original_gates, self.swaps, self.physical.depth())
    }

    /// The routed circuit with every inserted SWAP materialized as its
    /// three CNOTs — the circuit the hardware actually executes, whose
    /// gate count equals [`MappingStats::total_gates`].
    pub fn executable_circuit(&self) -> Circuit {
        let mut out = Circuit::new(self.physical.num_qubits());
        for inst in self.physical.iter() {
            match inst.gate() {
                Gate::Swap => {
                    let (a, b) = inst.qubit_pair().expect("swap is two-qubit");
                    out.cx(a, b).cx(b, a).cx(a, b);
                }
                _ => out.push_instruction(inst.clone()).expect("valid instruction"),
            }
        }
        out
    }
}

/// SABRE router bound to one architecture.
#[derive(Debug, Clone)]
pub struct SabreRouter<'a> {
    arch: &'a Architecture,
    /// Row-major flattened all-pairs distance matrix (stride
    /// `arch.num_qubits()`): one indexed load per lookup on the swap
    /// scoring path instead of two.
    dist: Vec<u32>,
    config: SabreConfig,
}

impl<'a> SabreRouter<'a> {
    /// Creates a router with default configuration.
    pub fn new(arch: &'a Architecture) -> Self {
        Self::with_config(arch, SabreConfig::default())
    }

    /// Creates a router with an explicit configuration.
    pub fn with_config(arch: &'a Architecture, config: SabreConfig) -> Self {
        let dist = arch.distance_matrix().into_iter().flatten().collect();
        SabreRouter { arch, dist, config }
    }

    /// Physical distance between `a` and `b` in coupling-graph hops.
    #[inline]
    fn dist(&self, a: usize, b: usize) -> u32 {
        self.dist[a * self.arch.num_qubits() + b]
    }

    /// The architecture this router targets.
    pub fn architecture(&self) -> &Architecture {
        self.arch
    }

    /// Routes a circuit: refines an initial mapping by reverse traversal,
    /// then produces the final forward routing.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit is wider than the chip, the chip is
    /// disconnected, or the circuit contains unitaries on three or more
    /// qubits.
    pub fn route(&self, circuit: &Circuit) -> Result<MappedCircuit, MappingError> {
        self.validate(circuit)?;
        let mut layout = self.config.initial_mapping.build(circuit, self.arch);
        let reversed = circuit.reversed();
        // The dependency DAGs are layout-independent: build each once and
        // share it across every refinement round. Refinement passes only
        // feed the next pass's initial layout, so they skip building the
        // physical circuit entirely — the swap decisions (layout, front,
        // decay, distances) are unaffected and the final pass emits the
        // exact circuit the unshared per-pass construction would.
        let dag = GateDag::new(circuit);
        let reversed_dag = GateDag::new(&reversed);
        for _ in 0..self.config.reverse_traversal_rounds {
            layout = self.route_pass(circuit, &dag, layout, None).0;
            layout = self.route_pass(&reversed, &reversed_dag, layout, None).0;
        }
        Ok(self.route_once(circuit, &dag, layout))
    }

    /// Routes a circuit from an explicit initial layout, without
    /// reverse-traversal refinement.
    ///
    /// # Errors
    ///
    /// Same as [`SabreRouter::route`], plus
    /// [`MappingError::InvalidLayout`] if the layout's size does not match
    /// the chip.
    pub fn route_from(
        &self,
        circuit: &Circuit,
        initial: Layout,
    ) -> Result<MappedCircuit, MappingError> {
        self.validate(circuit)?;
        if initial.len() != self.arch.num_qubits() {
            return Err(MappingError::InvalidLayout {
                reason: format!(
                    "layout covers {} qubits, architecture has {}",
                    initial.len(),
                    self.arch.num_qubits()
                ),
            });
        }
        Ok(self.route_once(circuit, &GateDag::new(circuit), initial))
    }

    fn validate(&self, circuit: &Circuit) -> Result<(), MappingError> {
        if circuit.num_qubits() > self.arch.num_qubits() {
            return Err(MappingError::CircuitTooWide {
                logical: circuit.num_qubits(),
                physical: self.arch.num_qubits(),
            });
        }
        if !self.arch.is_connected() {
            return Err(MappingError::DisconnectedArchitecture);
        }
        for inst in circuit.iter() {
            if inst.gate().is_unitary() && inst.qubits().len() > 2 {
                return Err(MappingError::UnsupportedGate { gate: inst.gate().name() });
            }
        }
        Ok(())
    }

    /// One full recorded routing pass (the core SABRE loop), emitting
    /// the physical circuit.
    fn route_once(&self, circuit: &Circuit, dag: &GateDag, initial: Layout) -> MappedCircuit {
        let mut physical = Circuit::new(self.arch.num_qubits());
        let (final_layout, swaps) =
            self.route_pass(circuit, dag, initial.clone(), Some(&mut physical));
        MappedCircuit {
            physical,
            initial_layout: initial,
            final_layout,
            original_gates: circuit.gate_count(),
            swaps,
        }
    }

    /// The SABRE loop over a prebuilt dependency DAG. With
    /// `record: None` (the refinement rounds) no physical circuit is
    /// built — only the final layout and swap count are produced; the
    /// swap decisions are identical either way because they read only
    /// the layout, the front layer, the decay table, and the distance
    /// matrix.
    fn route_pass(
        &self,
        circuit: &Circuit,
        dag: &GateDag,
        initial: Layout,
        mut record: Option<&mut Circuit>,
    ) -> (Layout, usize) {
        let n_phys = self.arch.num_qubits();
        let mut cursor = dag.cursor();
        let mut layout = initial;
        let mut front: Vec<usize> = dag.initial_front().to_vec();
        let mut next_front: Vec<usize> = Vec::with_capacity(front.len() + 8);
        let mut swaps = 0usize;
        let mut decay = vec![1.0f64; n_phys];
        let mut swaps_since_reset = 0usize;

        // Reused per-blocked-step buffers: the mapped-operand scratch,
        // the front pair list, the front-occupancy flags, and the
        // extended-set BFS state (epoch-marked visited array instead of
        // a rehashed set per step).
        let mut mapped_buf: Vec<Qubit> = Vec::with_capacity(4);
        let mut front_pairs: Vec<(usize, usize)> = Vec::new();
        let mut front_phys = vec![false; n_phys];
        let mut extended: Vec<(usize, usize)> = Vec::with_capacity(self.config.extended_set_size);
        let mut ext_queue: VecDeque<usize> = VecDeque::new();
        let mut ext_seen: Vec<u32> = vec![0; dag.len()];
        let mut ext_epoch: u32 = 0;

        let instructions = circuit.instructions();

        while !cursor.is_done() {
            // Phase 1: drain every executable gate from the front layer.
            let mut progressed = true;
            while progressed {
                progressed = false;
                next_front.clear();
                for &idx in &front {
                    if self.is_executable(&instructions[idx], &layout) {
                        if let Some(physical) = record.as_deref_mut() {
                            let inst = &instructions[idx];
                            mapped_buf.clear();
                            mapped_buf.extend(
                                inst.qubits()
                                    .iter()
                                    .map(|q| Qubit::from(layout.phys_of_log(q.index()))),
                            );
                            physical
                                .push(inst.gate().clone(), &mapped_buf)
                                .expect("mapped instruction is valid");
                        }
                        cursor.execute_into(idx, &mut next_front);
                        progressed = true;
                        // A gate was executed: reset decay, per SABRE.
                        decay.fill(1.0);
                        swaps_since_reset = 0;
                    } else {
                        next_front.push(idx);
                    }
                }
                std::mem::swap(&mut front, &mut next_front);
            }
            if front.is_empty() {
                debug_assert!(cursor.is_done(), "empty front with unexecuted gates");
                break;
            }

            // Phase 2: pick the best SWAP for the blocked front layer.
            front_pairs.clear();
            front_pairs.extend(
                front
                    .iter()
                    .filter_map(|&idx| instructions[idx].qubit_pair())
                    .map(|(a, b)| (a.index(), b.index())),
            );
            ext_epoch += 1;
            self.extended_set(
                instructions,
                dag,
                &cursor,
                &front,
                &mut extended,
                &mut ext_queue,
                &mut ext_seen,
                ext_epoch,
            );

            front_phys.fill(false);
            for &(a, b) in &front_pairs {
                front_phys[layout.phys_of_log(a)] = true;
                front_phys[layout.phys_of_log(b)] = true;
            }

            let mut best: Option<((usize, usize), f64)> = None;
            for &(p1, p2) in self.arch.coupling_edges() {
                if !front_phys[p1] && !front_phys[p2] {
                    continue;
                }
                layout.swap_physical(p1, p2);
                let mut h = 0.0f64;
                for &(a, b) in &front_pairs {
                    h += self.dist(layout.phys_of_log(a), layout.phys_of_log(b)) as f64;
                }
                h /= front_pairs.len() as f64;
                if !extended.is_empty() {
                    let mut e = 0.0f64;
                    for &(a, b) in &extended {
                        e += self.dist(layout.phys_of_log(a), layout.phys_of_log(b)) as f64;
                    }
                    h += self.config.extended_set_weight * e / extended.len() as f64;
                }
                layout.swap_physical(p1, p2);
                let score = decay[p1].max(decay[p2]) * h;
                let better = match best {
                    None => true,
                    Some((_, s)) => score < s - 1e-12,
                };
                if better {
                    best = Some(((p1, p2), score));
                }
            }
            let ((p1, p2), _) = best.expect("connected architecture always offers a swap");

            if let Some(physical) = record.as_deref_mut() {
                physical
                    .push(Gate::Swap, &[Qubit::from(p1), Qubit::from(p2)])
                    .expect("swap on valid physical qubits");
            }
            layout.swap_physical(p1, p2);
            swaps += 1;
            decay[p1] += self.config.decay_delta;
            decay[p2] += self.config.decay_delta;
            swaps_since_reset += 1;
            if swaps_since_reset >= self.config.decay_reset_interval {
                decay.fill(1.0);
                swaps_since_reset = 0;
            }
        }

        (layout, swaps)
    }

    fn is_executable(&self, inst: &Instruction, layout: &Layout) -> bool {
        if !(inst.gate().is_unitary() && inst.qubits().len() == 2) {
            return true;
        }
        let (a, b) = inst.qubit_pair().expect("two-qubit gate");
        self.dist(layout.phys_of_log(a.index()), layout.phys_of_log(b.index())) == 1
    }

    /// The lookahead extended set: the nearest unexecuted two-qubit
    /// successors of the front layer in BFS order, capped at
    /// `extended_set_size` gates.
    ///
    /// Writes into caller-owned buffers: `pairs` receives the result;
    /// `queue` and `seen`/`epoch` replace a per-call hash set with an
    /// epoch-marked visited array (a node is "seen" iff its slot holds
    /// the current epoch), so nothing is reallocated per blocked step.
    #[allow(clippy::too_many_arguments)]
    fn extended_set(
        &self,
        instructions: &[Instruction],
        dag: &GateDag,
        cursor: &DagCursor<'_>,
        front: &[usize],
        pairs: &mut Vec<(usize, usize)>,
        queue: &mut VecDeque<usize>,
        seen: &mut [u32],
        epoch: u32,
    ) {
        pairs.clear();
        queue.clear();
        for &f in front {
            seen[f] = epoch;
        }
        for &f in front {
            for &succ in dag.successors(f) {
                if !cursor.is_executed(succ) && seen[succ] != epoch {
                    seen[succ] = epoch;
                    queue.push_back(succ);
                }
            }
        }
        while let Some(idx) = queue.pop_front() {
            let inst = &instructions[idx];
            if inst.gate().is_unitary() && inst.qubits().len() == 2 {
                let (a, b) = inst.qubit_pair().expect("two-qubit gate");
                pairs.push((a.index(), b.index()));
                if pairs.len() >= self.config.extended_set_size {
                    break;
                }
            }
            for &succ in dag.successors(idx) {
                if !cursor.is_executed(succ) && seen[succ] != epoch {
                    seen[succ] = epoch;
                    queue.push_back(succ);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_mapped;
    use qpd_circuit::random::{random_circuit, RandomCircuitSpec};
    use qpd_topology::{ibm, Architecture, BusMode};

    fn line(n: i32) -> Architecture {
        let mut b = Architecture::builder(format!("line{n}"));
        for c in 0..n {
            b.qubit(0, c);
        }
        b.build().unwrap()
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let arch = line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let router = SabreRouter::with_config(
            &arch,
            SabreConfig { initial_mapping: InitialMapping::Trivial, ..Default::default() },
        );
        let mapped = router.route_from(&c, Layout::trivial(3)).unwrap();
        assert_eq!(mapped.swap_count(), 0);
        assert_eq!(mapped.stats().total_gates, 2);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let arch = line(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let router = SabreRouter::new(&arch);
        let mapped = router.route_from(&c, Layout::trivial(4)).unwrap();
        assert!(mapped.swap_count() >= 2, "0 and 3 are distance 3 apart");
        verify_mapped(&c, &mapped, &arch).unwrap();
    }

    #[test]
    fn route_verifies_on_random_circuits() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        for seed in 0..5 {
            let c = random_circuit(&RandomCircuitSpec {
                num_qubits: 16,
                num_gates: 120,
                two_qubit_fraction: 0.5,
                seed,
            });
            let mapped = SabreRouter::new(&arch).route(&c).unwrap();
            verify_mapped(&c, &mapped, &arch).unwrap();
        }
    }

    #[test]
    fn narrow_circuit_on_wide_chip() {
        let arch = ibm::ibm_20q_4x5(BusMode::MaxFourQubit);
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: 7,
            num_gates: 60,
            two_qubit_fraction: 0.6,
            seed: 3,
        });
        let mapped = SabreRouter::new(&arch).route(&c).unwrap();
        verify_mapped(&c, &mapped, &arch).unwrap();
    }

    #[test]
    fn denser_connectivity_reduces_cost() {
        // The paper's premise: more connections -> fewer routing swaps.
        let sparse = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let dense = ibm::ibm_16q_2x8(BusMode::MaxFourQubit);
        let mut total_sparse = 0usize;
        let mut total_dense = 0usize;
        for seed in 0..4 {
            let c = random_circuit(&RandomCircuitSpec {
                num_qubits: 16,
                num_gates: 200,
                two_qubit_fraction: 0.5,
                seed: 100 + seed,
            });
            total_sparse += SabreRouter::new(&sparse).route(&c).unwrap().stats().total_gates;
            total_dense += SabreRouter::new(&dense).route(&c).unwrap().stats().total_gates;
        }
        assert!(
            total_dense < total_sparse,
            "dense {total_dense} should beat sparse {total_sparse}"
        );
    }

    #[test]
    fn too_wide_circuit_errors() {
        let arch = line(2);
        let c = Circuit::new(3);
        assert!(matches!(
            SabreRouter::new(&arch).route(&c),
            Err(MappingError::CircuitTooWide { logical: 3, physical: 2 })
        ));
    }

    #[test]
    fn disconnected_architecture_errors() {
        let mut b = Architecture::builder("disc");
        b.qubit(0, 0).qubit(5, 5);
        let arch = b.build().unwrap();
        let c = Circuit::new(2);
        assert!(matches!(
            SabreRouter::new(&arch).route(&c),
            Err(MappingError::DisconnectedArchitecture)
        ));
    }

    #[test]
    fn three_qubit_gate_errors() {
        let arch = line(4);
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert!(matches!(
            SabreRouter::new(&arch).route(&c),
            Err(MappingError::UnsupportedGate { gate: "ccx" })
        ));
    }

    #[test]
    fn route_is_deterministic() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: 12,
            num_gates: 150,
            two_qubit_fraction: 0.5,
            seed: 77,
        });
        let a = SabreRouter::new(&arch).route(&c).unwrap();
        let b = SabreRouter::new(&arch).route(&c).unwrap();
        assert_eq!(a.physical_circuit(), b.physical_circuit());
        assert_eq!(a.swap_count(), b.swap_count());
    }

    #[test]
    fn measures_and_barriers_pass_through() {
        let arch = line(3);
        let mut c = Circuit::new(3);
        c.h(0).barrier_all().cx(0, 1).measure_all();
        let mapped = SabreRouter::new(&arch).route(&c).unwrap();
        let names: Vec<&str> = mapped.physical_circuit().iter().map(|i| i.gate().name()).collect();
        assert!(names.contains(&"barrier"));
        assert_eq!(names.iter().filter(|&&n| n == "measure").count(), 3);
    }

    #[test]
    fn reverse_traversal_helps_or_ties() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: 16,
            num_gates: 300,
            two_qubit_fraction: 0.5,
            seed: 5,
        });
        let refined = SabreRouter::new(&arch).route(&c).unwrap();
        let unrefined = SabreRouter::new(&arch)
            .route_from(&c, InitialMapping::DegreeMatched.build(&c, &arch))
            .unwrap();
        // Not guaranteed gate-by-gate, but refinement should not be much
        // worse; allow 10% slack and require both to verify.
        verify_mapped(&c, &refined, &arch).unwrap();
        verify_mapped(&c, &unrefined, &arch).unwrap();
        assert!(
            (refined.stats().total_gates as f64) <= 1.10 * unrefined.stats().total_gates as f64
        );
    }

    #[test]
    fn executable_circuit_matches_total_gates() {
        let arch = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
        let c = random_circuit(&RandomCircuitSpec {
            num_qubits: 10,
            num_gates: 80,
            two_qubit_fraction: 0.5,
            seed: 31,
        });
        let mapped = SabreRouter::new(&arch).route(&c).unwrap();
        let executable = mapped.executable_circuit();
        assert_eq!(executable.gate_count(), mapped.stats().total_gates);
        assert!(executable.iter().all(|i| i.gate().name() != "swap"));
        // Every two-qubit gate must still land on a coupled pair.
        for inst in executable.iter() {
            if let Some((a, b)) = inst.qubit_pair() {
                assert!(arch.neighbors(a.index()).contains(&b.index()));
            }
        }
    }

    #[test]
    fn ising_chain_maps_perfectly_on_line() {
        // §5.3.1: a chain-coupled program on a line architecture needs no
        // swaps at all once the initial mapping is right.
        let arch = line(8);
        let mut c = Circuit::new(8);
        for step in 0..4 {
            let _ = step;
            for q in 0..7u32 {
                c.cx(q, q + 1);
            }
        }
        let mapped = SabreRouter::new(&arch).route(&c).unwrap();
        assert_eq!(mapped.swap_count(), 0, "chain on line must be swap-free");
    }
}
