//! Initial mapping strategies.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_circuit::Circuit;
use qpd_topology::Architecture;

use crate::layout::Layout;

/// How the router seeds its logical-to-physical mapping before the
/// reverse-traversal refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialMapping {
    /// Logical qubit `i` starts on physical qubit `i`.
    Trivial,
    /// Logical qubits sorted by coupling degree are assigned to physical
    /// qubits sorted by degree and centrality: busy logical qubits land on
    /// well-connected, central physical qubits.
    DegreeMatched,
    /// A seeded random permutation (what the SABRE paper uses before its
    /// reverse traversal).
    Random(u64),
}

impl InitialMapping {
    /// Builds a layout on `arch.num_qubits()` qubits for `circuit`.
    ///
    /// The circuit may be narrower than the chip; extra physical qubits
    /// host dummy logical qubits.
    pub fn build(self, circuit: &Circuit, arch: &Architecture) -> Layout {
        let n = arch.num_qubits();
        match self {
            InitialMapping::Trivial => Layout::trivial(n),
            InitialMapping::Random(seed) => {
                let mut perm: Vec<u32> = (0..n as u32).collect();
                perm.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
                Layout::from_log_to_phys(perm).expect("shuffled permutation is valid")
            }
            InitialMapping::DegreeMatched => {
                // Logical degrees: number of two-qubit gates per qubit.
                let mut logical_degree = vec![0u64; n];
                for (a, b) in circuit.two_qubit_pairs() {
                    logical_degree[a.index()] += 1;
                    logical_degree[b.index()] += 1;
                }
                let mut logical: Vec<usize> = (0..n).collect();
                logical.sort_by_key(|&q| (std::cmp::Reverse(logical_degree[q]), q));

                // Physical preference: high degree first, then closeness to
                // the center qubit, then index.
                let dist = arch.distance_matrix();
                let center = arch.center_qubit();
                let mut physical: Vec<usize> = (0..n).collect();
                physical.sort_by_key(|&p| (std::cmp::Reverse(arch.degree(p)), dist[center][p], p));

                let mut log_to_phys = vec![0u32; n];
                for (l, p) in logical.into_iter().zip(physical) {
                    log_to_phys[l] = p as u32;
                }
                Layout::from_log_to_phys(log_to_phys).expect("constructed permutation is valid")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_topology::Architecture;

    fn line4() -> Architecture {
        let mut b = Architecture::builder("line4");
        for c in 0..4 {
            b.qubit(0, c);
        }
        b.build().unwrap()
    }

    #[test]
    fn trivial_is_identity() {
        let arch = line4();
        let l = InitialMapping::Trivial.build(&Circuit::new(2), &arch);
        assert_eq!(l.phys_of_log(1), 1);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let arch = line4();
        let c = Circuit::new(4);
        let a = InitialMapping::Random(9).build(&c, &arch);
        let b = InitialMapping::Random(9).build(&c, &arch);
        let other = InitialMapping::Random(10).build(&c, &arch);
        assert_eq!(a, b);
        assert_ne!(a, other);
    }

    #[test]
    fn degree_matched_centers_busy_qubit() {
        let arch = line4();
        // Qubit 3 is the busiest logical qubit.
        let mut c = Circuit::new(4);
        c.cx(3, 0).cx(3, 1).cx(3, 2);
        let l = InitialMapping::DegreeMatched.build(&c, &arch);
        // Physical qubits 1 and 2 have degree 2 (ends have 1); the busy
        // logical qubit must land on one of them.
        let p = l.phys_of_log(3);
        assert!(p == 1 || p == 2, "busy qubit placed at end: {p}");
    }

    #[test]
    fn narrow_circuit_padded() {
        let arch = line4();
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let l = InitialMapping::DegreeMatched.build(&c, &arch);
        assert_eq!(l.len(), 4);
        // All four physical qubits are used by the bijection.
        let mut seen = [false; 4];
        for log in 0..4 {
            seen[l.phys_of_log(log)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
