//! Logical-to-physical qubit layouts.

use serde::{Deserialize, Serialize};

use crate::error::MappingError;

/// A bijection between `n` logical and `n` physical qubits.
///
/// Circuits narrower than the chip are padded with dummy logical qubits
/// (indices `>= circuit.num_qubits()`), which keeps the mapping a
/// permutation — the representation SABRE's swap updates need.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    log_to_phys: Vec<u32>,
    phys_to_log: Vec<u32>,
}

impl Layout {
    /// The identity layout on `n` qubits.
    pub fn trivial(n: usize) -> Self {
        Layout { log_to_phys: (0..n as u32).collect(), phys_to_log: (0..n as u32).collect() }
    }

    /// Builds a layout from a logical-to-physical permutation.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InvalidLayout`] unless `log_to_phys` is a
    /// permutation of `0..n`.
    pub fn from_log_to_phys(log_to_phys: Vec<u32>) -> Result<Self, MappingError> {
        let n = log_to_phys.len();
        let mut phys_to_log = vec![u32::MAX; n];
        for (l, &p) in log_to_phys.iter().enumerate() {
            let p = p as usize;
            if p >= n {
                return Err(MappingError::InvalidLayout {
                    reason: format!("physical index {p} out of range for {n} qubits"),
                });
            }
            if phys_to_log[p] != u32::MAX {
                return Err(MappingError::InvalidLayout {
                    reason: format!("physical qubit {p} assigned twice"),
                });
            }
            phys_to_log[p] = l as u32;
        }
        Ok(Layout { log_to_phys, phys_to_log })
    }

    /// Number of qubits on each side of the bijection.
    pub fn len(&self) -> usize {
        self.log_to_phys.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.log_to_phys.is_empty()
    }

    /// Physical qubit hosting logical qubit `l`.
    pub fn phys_of_log(&self, l: usize) -> usize {
        self.log_to_phys[l] as usize
    }

    /// Logical qubit hosted on physical qubit `p`.
    pub fn log_of_phys(&self, p: usize) -> usize {
        self.phys_to_log[p] as usize
    }

    /// The logical-to-physical permutation.
    pub fn as_log_to_phys(&self) -> &[u32] {
        &self.log_to_phys
    }

    /// Applies a SWAP on two physical qubits (their logical occupants
    /// exchange places).
    pub fn swap_physical(&mut self, p1: usize, p2: usize) {
        let l1 = self.phys_to_log[p1];
        let l2 = self.phys_to_log[p2];
        self.phys_to_log.swap(p1, p2);
        self.log_to_phys[l1 as usize] = p2 as u32;
        self.log_to_phys[l2 as usize] = p1 as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_roundtrip() {
        let l = Layout::trivial(4);
        for i in 0..4 {
            assert_eq!(l.phys_of_log(i), i);
            assert_eq!(l.log_of_phys(i), i);
        }
    }

    #[test]
    fn swap_updates_both_directions() {
        let mut l = Layout::trivial(3);
        l.swap_physical(0, 2);
        assert_eq!(l.phys_of_log(0), 2);
        assert_eq!(l.phys_of_log(2), 0);
        assert_eq!(l.log_of_phys(0), 2);
        assert_eq!(l.log_of_phys(2), 0);
        assert_eq!(l.phys_of_log(1), 1);
        // Swapping back restores identity.
        l.swap_physical(0, 2);
        assert_eq!(l, Layout::trivial(3));
    }

    #[test]
    fn from_permutation_validates() {
        assert!(Layout::from_log_to_phys(vec![1, 0, 2]).is_ok());
        assert!(matches!(
            Layout::from_log_to_phys(vec![0, 0]),
            Err(MappingError::InvalidLayout { .. })
        ));
        assert!(matches!(
            Layout::from_log_to_phys(vec![0, 5]),
            Err(MappingError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn permutation_accessor() {
        let l = Layout::from_log_to_phys(vec![2, 0, 1]).unwrap();
        assert_eq!(l.as_log_to_phys(), &[2, 0, 1]);
        assert_eq!(l.log_of_phys(2), 0);
    }
}
