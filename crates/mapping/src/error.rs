//! Error type for mapping and routing.

use std::error::Error;
use std::fmt;

/// Error mapping a circuit onto an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MappingError {
    /// The circuit has more logical qubits than the chip has physical
    /// qubits.
    CircuitTooWide {
        /// Logical qubits required.
        logical: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The chip's coupling graph is disconnected, so some two-qubit gates
    /// can never be routed.
    DisconnectedArchitecture,
    /// The circuit contains a unitary on three or more qubits; decompose
    /// it first (`qpd_circuit::decompose::decompose_to_native`).
    UnsupportedGate {
        /// Offending gate name.
        gate: &'static str,
    },
    /// An explicit initial layout was not a valid injection of logical
    /// into physical qubits.
    InvalidLayout {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::CircuitTooWide { logical, physical } => {
                write!(f, "circuit needs {logical} qubits but the architecture has only {physical}")
            }
            MappingError::DisconnectedArchitecture => {
                write!(f, "architecture coupling graph is disconnected")
            }
            MappingError::UnsupportedGate { gate } => write!(
                f,
                "gate `{gate}` acts on more than two qubits; decompose the circuit before routing"
            ),
            MappingError::InvalidLayout { reason } => write!(f, "invalid initial layout: {reason}"),
        }
    }
}

impl Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = MappingError::CircuitTooWide { logical: 20, physical: 16 };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("16"));
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MappingError>();
    }
}
