//! Independent verification of routed circuits.

use qpd_circuit::{Circuit, Gate};
use qpd_topology::Architecture;

use crate::sabre::MappedCircuit;

/// Checks that a routed circuit faithfully implements the original:
///
/// 1. every two-qubit unitary acts on a coupled physical pair;
/// 2. inserted SWAPs act on coupled pairs too;
/// 3. un-mapping the routed gates through the evolving layout reproduces
///    the original per-qubit-line gate sequences (DAG equivalence).
///
/// The original circuit must not itself contain SWAP gates (decompose
/// them first) so inserted routing SWAPs are unambiguous.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn verify_mapped(
    original: &Circuit,
    mapped: &MappedCircuit,
    arch: &Architecture,
) -> Result<(), String> {
    if original.iter().any(|i| matches!(i.gate(), Gate::Swap)) {
        return Err("original circuit contains swap gates; decompose before verifying".into());
    }

    let coupled = |a: usize, b: usize| -> bool { arch.neighbors(a).contains(&b) };

    // Replay the mapped circuit, un-mapping through the evolving layout.
    let mut layout = mapped.initial_layout().clone();
    let mut replayed: Vec<(String, Vec<usize>)> = Vec::new();
    for inst in mapped.physical_circuit().iter() {
        let phys: Vec<usize> = inst.qubits().iter().map(|q| q.index()).collect();
        if inst.gate().is_unitary() && phys.len() == 2 && !coupled(phys[0], phys[1]) {
            return Err(format!(
                "{} acts on uncoupled physical pair ({}, {})",
                inst.gate().name(),
                phys[0],
                phys[1]
            ));
        }
        match inst.gate() {
            Gate::Swap => layout.swap_physical(phys[0], phys[1]),
            g => {
                let logical: Vec<usize> = phys.iter().map(|&p| layout.log_of_phys(p)).collect();
                replayed.push((format!("{g}"), logical));
            }
        }
    }

    // Original per-line sequences.
    let originals: Vec<(String, Vec<usize>)> = original
        .iter()
        .map(|inst| {
            (
                format!("{}", inst.gate()),
                inst.qubits().iter().map(|q| q.index()).collect::<Vec<usize>>(),
            )
        })
        .collect();

    if originals.len() != replayed.len() {
        return Err(format!(
            "gate count mismatch: original {} vs replayed {}",
            originals.len(),
            replayed.len()
        ));
    }

    let num_qubits = original.num_qubits();
    let project = |items: &[(String, Vec<usize>)], q: usize| -> Vec<(String, Vec<usize>)> {
        items.iter().filter(|(_, qs)| qs.contains(&q)).cloned().collect()
    };
    for q in 0..num_qubits {
        let a = project(&originals, q);
        let b = project(&replayed, q);
        if a != b {
            return Err(format!(
                "per-line sequence mismatch on logical qubit {q}: {} vs {} gates",
                a.len(),
                b.len()
            ));
        }
    }
    // The final layout must equal initial composed with the swaps.
    if &layout != mapped.final_layout() {
        return Err("final layout does not match the net effect of swaps".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabre::SabreRouter;
    use qpd_topology::Architecture;

    fn line(n: i32) -> Architecture {
        let mut b = Architecture::builder(format!("line{n}"));
        for c in 0..n {
            b.qubit(0, c);
        }
        b.build().unwrap()
    }

    #[test]
    fn accepts_correct_routing() {
        let arch = line(4);
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3).cx(1, 2).measure_all();
        let mapped = SabreRouter::new(&arch).route(&c).unwrap();
        verify_mapped(&c, &mapped, &arch).unwrap();
    }

    #[test]
    fn rejects_swapful_original() {
        let arch = line(2);
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let mapped = SabreRouter::new(&arch)
            .route(&{
                let mut plain = Circuit::new(2);
                plain.cx(0, 1);
                plain
            })
            .unwrap();
        assert!(verify_mapped(&c, &mapped, &arch).is_err());
    }

    #[test]
    fn detects_gate_count_mismatch() {
        let arch = line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let mapped = SabreRouter::new(&arch).route(&c).unwrap();
        let mut bigger = c.clone();
        bigger.cx(1, 2);
        let err = verify_mapped(&bigger, &mapped, &arch).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }
}
