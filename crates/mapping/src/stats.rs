//! Mapping cost statistics.

use serde::{Deserialize, Serialize};

/// Cost summary of a routed circuit.
///
/// `total_gates` is the paper's performance metric (§5.1): every original
/// gate plus 3 CNOTs per inserted SWAP. Fewer post-mapping gates means
/// shorter execution and lower error probability, i.e. better performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingStats {
    /// Gates in the original circuit (barriers excluded).
    pub original_gates: usize,
    /// SWAPs inserted by routing.
    pub swaps: usize,
    /// Post-mapping gate count: `original_gates + 3 * swaps`.
    pub total_gates: usize,
    /// Depth of the routed circuit (with SWAPs counted as one layer each).
    pub routed_depth: usize,
}

impl MappingStats {
    /// Builds stats from the raw counts.
    pub fn new(original_gates: usize, swaps: usize, routed_depth: usize) -> Self {
        MappingStats {
            original_gates,
            swaps,
            total_gates: original_gates + 3 * swaps,
            routed_depth,
        }
    }

    /// Routing overhead as a fraction of the original gate count.
    pub fn overhead(&self) -> f64 {
        if self.original_gates == 0 {
            0.0
        } else {
            (self.total_gates - self.original_gates) as f64 / self.original_gates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_costs_three() {
        let s = MappingStats::new(100, 7, 42);
        assert_eq!(s.total_gates, 121);
        assert!((s.overhead() - 0.21).abs() < 1e-12);
    }

    #[test]
    fn zero_original_gates() {
        let s = MappingStats::new(0, 0, 0);
        assert_eq!(s.overhead(), 0.0);
    }
}
