//! Qubit mapping and routing onto superconducting coupling graphs.
//!
//! The paper's performance metric is the total post-mapping gate count
//! produced by "one state-of-the-art qubit mapping algorithm \[18\]" —
//! SABRE (Li, Ding, Xie, ASPLOS 2019). This crate reimplements SABRE from
//! its published description:
//!
//! - front-layer routing over the gate dependency DAG,
//! - SWAP candidates restricted to edges touching front-layer qubits,
//! - the lookahead heuristic over an extended successor set,
//! - a decay term that spreads consecutive SWAPs across qubits,
//! - reverse-traversal refinement of the initial mapping.
//!
//! A greedy shortest-path router ([`greedy::GreedyRouter`]) serves as a
//! baseline and cross-check. Routed circuits carry explicit SWAP gates;
//! the paper's gate-count metric expands each SWAP into 3 CNOTs
//! ([`MappingStats::total_gates`]).
//!
//! ```
//! use qpd_circuit::Circuit;
//! use qpd_mapping::SabreRouter;
//! use qpd_topology::{ibm, BusMode};
//!
//! # fn main() -> Result<(), qpd_mapping::MappingError> {
//! let chip = ibm::ibm_16q_2x8(BusMode::TwoQubitOnly);
//! let mut qft4 = Circuit::new(4);
//! for i in 0..4u32 {
//!     for j in (i + 1)..4u32 {
//!         qft4.cx(i, j);
//!     }
//! }
//! let mapped = SabreRouter::new(&chip).route(&qft4)?;
//! assert!(mapped.stats().total_gates >= qft4.gate_count());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod greedy;
pub mod initial;
pub mod layout;
pub mod sabre;
pub mod stats;
pub mod verify;

pub use error::MappingError;
pub use greedy::GreedyRouter;
pub use initial::InitialMapping;
pub use layout::Layout;
pub use sabre::{MappedCircuit, SabreConfig, SabreRouter};
pub use stats::MappingStats;
