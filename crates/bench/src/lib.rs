//! Criterion benchmarks for the QPD workspace; see the `benches/` directory.
