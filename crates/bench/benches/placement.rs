//! Benchmarks layout design (paper Algorithm 1) on every workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qpd_core::place_qubits;
use qpd_profile::CouplingProfile;

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.sample_size(20);
    for spec in &qpd_benchmarks::ALL {
        let circuit = qpd_benchmarks::build(spec.name).expect("benchmark");
        let profile = CouplingProfile::of(&circuit);
        group.bench_function(spec.name, |b| b.iter(|| place_qubits(black_box(&profile))));
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
