//! Benchmarks SABRE routing (the performance-metric engine) against the
//! greedy baseline router on representative workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qpd_mapping::{GreedyRouter, SabreRouter};
use qpd_topology::{ibm, BusMode};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    let chip = ibm::ibm_20q_4x5(BusMode::MaxFourQubit);
    for name in ["qft_16", "rd84_142", "cm152a_212", "ising_model_16"] {
        let circuit = qpd_benchmarks::build(name).expect("benchmark");
        let sabre = SabreRouter::new(&chip);
        group.bench_function(format!("sabre/{name}"), |b| {
            b.iter(|| sabre.route(black_box(&circuit)).expect("routable"))
        });
        let greedy = GreedyRouter::new(&chip);
        group.bench_function(format!("greedy/{name}"), |b| {
            b.iter(|| greedy.route(black_box(&circuit)).expect("routable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
