//! Benchmarks frequency allocation (paper Algorithm 3) at several
//! local-simulation budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qpd_core::{place_qubits, FrequencyAllocator};
use qpd_profile::CouplingProfile;
use qpd_topology::Architecture;

fn designed_topology(name: &str) -> Architecture {
    let circuit = qpd_benchmarks::build(name).expect("benchmark");
    let profile = CouplingProfile::of(&circuit);
    let coords = place_qubits(&profile);
    let mut b = Architecture::builder(name);
    b.qubits(coords);
    b.build().expect("valid layout")
}

fn bench_freq_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("freq_allocation");
    group.sample_size(10);
    for name in ["sym6_145", "dc1_220", "rd84_142"] {
        let arch = designed_topology(name);
        for trials in [200usize, 1_000] {
            let allocator = FrequencyAllocator::new().with_trials(trials);
            group.bench_function(format!("{name}/trials{trials}"), |b| {
                b.iter(|| allocator.allocate(black_box(&arch)))
            });
        }
    }
    group.finish();

    // Ablation (DESIGN.md / EXPERIMENTS.md): the paper's single-pass
    // Algorithm 3 versus the iterated refinement this crate defaults to.
    let mut group = c.benchmark_group("freq_allocation_ablation");
    group.sample_size(10);
    let arch = designed_topology("rd84_142");
    for sweeps in [0usize, 2, 8] {
        let allocator = FrequencyAllocator::new().with_trials(1_000).with_refinement_sweeps(sweeps);
        group.bench_function(format!("rd84_142/sweeps{sweeps}"), |b| {
            b.iter(|| allocator.allocate(black_box(&arch)))
        });
    }
    group.finish();

    // The retained pre-overhaul evaluator (naive serial path, unpaired
    // noise) versus the compiled-regions default — the same comparison
    // `bench_snapshot` records in BENCH_2.json.
    let mut group = c.benchmark_group("freq_allocation_path");
    group.sample_size(10);
    let arch = designed_topology("rd84_142");
    let compiled = FrequencyAllocator::new().with_trials(1_000);
    group.bench_function("rd84_142/compiled", |b| b.iter(|| compiled.allocate(black_box(&arch))));
    let reference = FrequencyAllocator::new().with_trials(1_000).with_reference_path();
    group.bench_function("rd84_142/reference", |b| b.iter(|| reference.allocate(black_box(&arch))));
    group.finish();
}

criterion_group!(benches, bench_freq_allocation);
criterion_main!(benches);
