//! Benchmarks the full design flow (profile -> layout -> buses ->
//! frequencies) per workload, the end-to-end cost a user pays per chip.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qpd_core::DesignFlow;
use qpd_profile::CouplingProfile;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_flow");
    group.sample_size(10);
    for name in ["sym6_145", "z4_268", "adr4_197"] {
        let circuit = qpd_benchmarks::build(name).expect("benchmark");
        let profile = CouplingProfile::of(&circuit);
        let flow = DesignFlow::new().with_allocation_trials(500);
        group.bench_function(format!("design/{name}"), |b| {
            b.iter(|| flow.design(black_box(&profile)).expect("designable"))
        });
        group.bench_function(format!("series/{name}"), |b| {
            b.iter(|| flow.design_series(black_box(&profile)).expect("designable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
