//! Benchmarks 4-qubit bus selection (paper Algorithm 2): the weighted
//! filtered-weight heuristic against random selection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qpd_core::{place_qubits, select_buses_maximal, select_buses_random, select_buses_weighted};
use qpd_profile::CouplingProfile;

fn bench_bus_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus_selection");
    group.sample_size(30);
    for name in ["misex1_241", "qft_16", "rd84_142"] {
        let circuit = qpd_benchmarks::build(name).expect("benchmark");
        let profile = CouplingProfile::of(&circuit);
        let coords = place_qubits(&profile);
        group.bench_function(format!("weighted/{name}"), |b| {
            b.iter(|| select_buses_weighted(black_box(&coords), black_box(&profile), usize::MAX))
        });
        group.bench_function(format!("random/{name}"), |b| {
            b.iter(|| select_buses_random(black_box(&coords), 4, 7))
        });
        group.bench_function(format!("maximal/{name}"), |b| {
            b.iter(|| select_buses_maximal(black_box(&coords)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bus_selection);
criterion_main!(benches);
