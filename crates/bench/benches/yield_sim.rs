//! Benchmarks the Monte Carlo yield simulator (paper §4.3.1) at the
//! paper's 10,000-trial setting on the four IBM baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qpd_topology::ibm;
use qpd_yield::{CollisionChecker, YieldSimulator};

fn bench_yield(c: &mut Criterion) {
    let mut group = c.benchmark_group("yield");
    group.sample_size(10);
    for arch in ibm::all_baselines() {
        let sim = YieldSimulator::new().with_trials(10_000);
        group.bench_function(format!("mc10k/{}", arch.name()), |b| {
            b.iter(|| sim.estimate(black_box(&arch)).expect("plan attached"))
        });
        let serial = sim.single_threaded();
        group.bench_function(format!("mc10k-serial/{}", arch.name()), |b| {
            b.iter(|| serial.estimate(black_box(&arch)).expect("plan attached"))
        });
        let checker = CollisionChecker::new(&arch);
        let freqs: Vec<f64> = arch.frequencies().expect("plan attached").as_slice().to_vec();
        group.bench_function(format!("check/{}", arch.name()), |b| {
            b.iter(|| checker.has_collision(black_box(&freqs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_yield);
criterion_main!(benches);
