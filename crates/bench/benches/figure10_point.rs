//! Benchmarks producing one complete Figure 10 subfigure (all five
//! configurations, quick Monte Carlo settings) — the unit of work behind
//! the paper's headline plot.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use qpd_eval::runner::{run_benchmark, EvalSettings};

fn bench_figure10(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure10");
    group.sample_size(10);
    let settings = EvalSettings::quick();
    for name in ["sym6_145", "dc1_220"] {
        group.bench_function(name, |b| {
            b.iter(|| run_benchmark(black_box(name), black_box(&settings)).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure10);
criterion_main!(benches);
