//! Benchmarks the program profiler (paper §3): cost of extracting the
//! coupling strength matrix and degree list from each workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use qpd_profile::{CouplingProfile, PatternReport, TemporalProfile};

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    group.sample_size(20);
    for name in ["qft_16", "misex1_241", "UCCSD_ansatz_8", "ising_model_16"] {
        let circuit = qpd_benchmarks::build(name).expect("benchmark");
        group.bench_function(format!("coupling/{name}"), |b| {
            b.iter(|| CouplingProfile::of(black_box(&circuit)))
        });
        let profile = CouplingProfile::of(&circuit);
        group.bench_function(format!("patterns/{name}"), |b| {
            b.iter_batched(
                || profile.clone(),
                |p| PatternReport::of(black_box(&p)),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("temporal/{name}"), |b| {
            b.iter(|| TemporalProfile::of(black_box(&circuit), 8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profiling);
criterion_main!(benches);
