//! Error type for the design flow.

use std::error::Error;
use std::fmt;

use qpd_topology::TopologyError;

/// Error running the architecture design flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DesignError {
    /// The profiled program has no qubits, so there is nothing to design.
    EmptyProgram,
    /// A generated architecture failed validation — indicates a bug in a
    /// subroutine, surfaced rather than panicking.
    InvalidArchitecture(TopologyError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::EmptyProgram => write!(f, "cannot design a chip for a 0-qubit program"),
            DesignError::InvalidArchitecture(e) => {
                write!(f, "design flow produced an invalid architecture: {e}")
            }
        }
    }
}

impl Error for DesignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DesignError::InvalidArchitecture(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for DesignError {
    fn from(e: TopologyError) -> Self {
        DesignError::InvalidArchitecture(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DesignError::EmptyProgram;
        assert!(e.to_string().contains("0-qubit"));
        let e: DesignError = TopologyError::Empty.into();
        assert!(Error::source(&e).is_some());
    }
}
