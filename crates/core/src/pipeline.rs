//! The end-to-end design flow (paper Figure 1).
//!
//! Since the stage-graph refactor, [`DesignFlow`] is a thin facade over
//! a [`StagePlan`]: each subroutine (placement, bus selection,
//! frequency allocation + assembly) is a [`crate::stage::Stage`] served
//! through a per-stage content-keyed cache, so repeated calls — and
//! calls differing only in downstream knobs — skip the upstream work.
//! Caching is bit-transparent: every stage is a pure function of its
//! content key, and [`DesignFlow::design_reference`] retains the
//! monolithic computation the equivalence tests compare against.

use std::sync::Arc;

use qpd_profile::CouplingProfile;
use qpd_topology::{pattern_frequency_plan, Architecture, FrequencyPlan, Square};
use qpd_yield::HardwareFamily;

use crate::bus::{select_buses_random, select_buses_weighted};
use crate::error::DesignError;
use crate::freq::FrequencyAllocator;
use crate::placement::place_qubits;
use crate::stage::{AssembleJob, AssembleStage, BusOrderStage, PlacementStage, StagePlan};

/// How the flow assigns qubit frequencies (paper §5.2's configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequencyStrategy {
    /// Algorithm 3: center-out local-yield search (`eff-full`).
    Optimized,
    /// IBM's 5-frequency lattice pattern (`eff-5-freq`,
    /// `eff-layout-only`).
    FiveFrequency,
}

/// How the flow selects 4-qubit bus squares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusStrategy {
    /// Algorithm 2: filtered cross-coupling weight (`eff-full`).
    Weighted,
    /// Uniform random selection under the prohibited condition
    /// (`eff-rd-bus`).
    Random {
        /// Seed for the random square choice.
        seed: u64,
    },
}

/// One layout of a batched back-half submission
/// ([`DesignFlow::design_with_layout_batch`]): an explicit layout plus
/// the per-candidate knobs (frequency strategy, hardware family) that
/// override the base flow's for this job.
#[derive(Debug, Clone, Copy)]
pub struct LayoutJob<'a> {
    /// Qubit coordinates.
    pub coords: &'a [qpd_topology::Coord],
    /// Four-qubit bus squares.
    pub squares: &'a [Square],
    /// Frequency strategy for this job.
    pub frequency: FrequencyStrategy,
    /// Hardware family for this job.
    pub hardware: HardwareFamily,
}

/// The composed design flow: profile in, architecture (series) out.
///
/// Internally a facade over a [`StagePlan`]: every `design*` call runs
/// the placement → bus → frequency cascade through per-stage
/// content-keyed caches. Clones share the plan (an `Arc`), so a cloned
/// flow — e.g. the same flow with a different frequency strategy —
/// reuses every upstream result; sharing is always safe because stage
/// keys embed the full stage configuration.
#[derive(Debug, Clone)]
pub struct DesignFlow {
    bus_strategy: BusStrategy,
    frequency: FrequencyStrategy,
    max_buses: Option<usize>,
    auxiliary_qubits: usize,
    allocation_trials: usize,
    allocation_sweeps: usize,
    allocation_seed: u64,
    sigma_ghz: f64,
    name_prefix: String,
    hardware: HardwareFamily,
    plan: Arc<StagePlan>,
}

impl Default for DesignFlow {
    fn default() -> Self {
        Self::new()
    }
}

impl DesignFlow {
    /// The paper's full flow: weighted bus selection and optimized
    /// frequency allocation, with no cap on the number of 4-qubit buses.
    pub fn new() -> Self {
        DesignFlow {
            bus_strategy: BusStrategy::Weighted,
            frequency: FrequencyStrategy::Optimized,
            max_buses: None,
            auxiliary_qubits: 0,
            allocation_trials: 4_000,
            allocation_sweeps: 8,
            allocation_seed: 0,
            sigma_ghz: qpd_yield::FabricationModel::PAPER_SIGMA_GHZ,
            name_prefix: "eff".into(),
            hardware: HardwareFamily::FixedFrequencyTransmon,
            plan: Arc::new(StagePlan::new()),
        }
    }

    /// The stage plan (and its caches) this flow runs through. Exposed
    /// for cache statistics and for explicit cache management.
    pub fn plan(&self) -> &StagePlan {
        &self.plan
    }

    /// Replaces the stage plan with a fresh one whose caches hold at
    /// most `cap` entries each (`None` = unbounded). Detaches this flow
    /// from any plan shared with earlier clones; caching stays
    /// bit-transparent at every cap because stages are pure.
    pub fn with_memo_cap(mut self, cap: Option<usize>) -> Self {
        self.plan = Arc::new(StagePlan::with_cap(cap));
        self
    }

    /// Attaches this flow to an existing (shared) stage plan: every
    /// `design*` call is then served through — and populates — the given
    /// caches. Sharing across flows with different knobs is always safe
    /// because stage keys embed the full stage configuration; the
    /// evaluation runner uses this to route every benchmark of a run
    /// through one plan.
    pub fn with_plan(mut self, plan: Arc<StagePlan>) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the hardware family the flow designs for: its frequency
    /// band, pattern menu, and collision constraints flow into the
    /// frequency/assembly stage (placement and bus selection are
    /// hardware-independent). The default family reproduces the
    /// pre-hardware-layer flow bit for bit.
    pub fn with_hardware(mut self, hardware: HardwareFamily) -> Self {
        self.hardware = hardware;
        self
    }

    /// Sets the bus selection strategy.
    pub fn with_bus_strategy(mut self, strategy: BusStrategy) -> Self {
        self.bus_strategy = strategy;
        self
    }

    /// Sets the frequency strategy.
    pub fn with_frequency_strategy(mut self, strategy: FrequencyStrategy) -> Self {
        self.frequency = strategy;
        self
    }

    /// Caps the number of 4-qubit buses (`None` = as many as beneficial).
    pub fn with_max_buses(mut self, max: Option<usize>) -> Self {
        self.max_buses = max;
        self
    }

    /// Adds auxiliary physical qubits around the placed layout (paper
    /// §6, "Exploring More Design Space"): they host no logical qubit
    /// but give the router extra freedom, trading yield for performance.
    pub fn with_auxiliary_qubits(mut self, count: usize) -> Self {
        self.auxiliary_qubits = count;
        self
    }

    /// Sets the Monte Carlo trial count used inside frequency allocation.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn with_allocation_trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        self.allocation_trials = trials;
        self
    }

    /// Sets the refinement sweep budget of frequency allocation
    /// (0 = the paper's single-pass Algorithm 3).
    pub fn with_allocation_sweeps(mut self, sweeps: usize) -> Self {
        self.allocation_sweeps = sweeps;
        self
    }

    /// Sets the seed for frequency allocation's local simulations.
    pub fn with_allocation_seed(mut self, seed: u64) -> Self {
        self.allocation_seed = seed;
        self
    }

    /// Sets the fabrication precision assumed during frequency allocation.
    pub fn with_sigma_ghz(mut self, sigma_ghz: f64) -> Self {
        self.sigma_ghz = sigma_ghz;
        self
    }

    /// Sets the prefix for generated architecture names.
    pub fn with_name_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.name_prefix = prefix.into();
        self
    }

    /// The configured bus-selection strategy.
    pub fn bus_strategy(&self) -> BusStrategy {
        self.bus_strategy
    }

    /// The configured frequency strategy.
    pub fn frequency_strategy(&self) -> FrequencyStrategy {
        self.frequency
    }

    /// The configured 4-qubit-bus cap (`None` = uncapped).
    pub fn max_buses(&self) -> Option<usize> {
        self.max_buses
    }

    /// The configured auxiliary-qubit count.
    pub fn auxiliary_qubits(&self) -> usize {
        self.auxiliary_qubits
    }

    /// The configured Monte Carlo trial count of frequency allocation.
    pub fn allocation_trials(&self) -> usize {
        self.allocation_trials
    }

    /// The configured refinement sweep budget of frequency allocation.
    pub fn allocation_sweeps(&self) -> usize {
        self.allocation_sweeps
    }

    /// The configured frequency-allocation seed.
    pub fn allocation_seed(&self) -> u64 {
        self.allocation_seed
    }

    /// The configured fabrication precision in GHz.
    pub fn sigma_ghz(&self) -> f64 {
        self.sigma_ghz
    }

    /// The configured hardware family.
    pub fn hardware(&self) -> HardwareFamily {
        self.hardware
    }

    /// Runs the full flow with the maximum beneficial number of 4-qubit
    /// buses (subject to [`Self::with_max_buses`]).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::EmptyProgram`] for a 0-qubit profile.
    pub fn design(&self, profile: &CouplingProfile) -> Result<Architecture, DesignError> {
        let order = self.bus_order(profile)?;
        self.design_with_buses(profile, order.len())
    }

    /// Runs the flow with exactly `num_buses` 4-qubit buses (clamped to
    /// the number of available squares).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::EmptyProgram`] for a 0-qubit profile.
    pub fn design_with_buses(
        &self,
        profile: &CouplingProfile,
        num_buses: usize,
    ) -> Result<Architecture, DesignError> {
        let coords = self.place(profile)?;
        let order = self.bus_order(profile)?;
        let k = num_buses.min(order.len());
        self.assemble(&coords, &order[..k])
    }

    /// Runs the flow once per bus count `0..=max`, returning the paper's
    /// performance/yield series (the blue `eff-full` curves of
    /// Figure 10).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::EmptyProgram`] for a 0-qubit profile.
    pub fn design_series(
        &self,
        profile: &CouplingProfile,
    ) -> Result<Vec<Architecture>, DesignError> {
        let coords = self.place(profile)?;
        let order = self.bus_order(profile)?;
        (0..=order.len()).map(|k| self.assemble(&coords, &order[..k])).collect()
    }

    /// Runs the back half of the flow on an **explicit layout**: the
    /// given qubit coordinates and 4-qubit-bus squares, with this flow's
    /// frequency strategy and allocation knobs. This is the entry point
    /// the design-space explorer (`qpd-explore`) uses to evaluate
    /// perturbed bus sets and placement variants that no strategy of
    /// [`Self::bus_order`] generates.
    ///
    /// The placement and bus-selection knobs of this flow are ignored;
    /// square validity (three placed corners, prohibited condition) is
    /// still enforced by the architecture builder.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::EmptyProgram`] for empty `coords` and
    /// propagates builder errors for invalid squares.
    pub fn design_with_layout(
        &self,
        coords: &[qpd_topology::Coord],
        squares: &[Square],
    ) -> Result<Architecture, DesignError> {
        if coords.is_empty() {
            return Err(DesignError::EmptyProgram);
        }
        self.assemble(coords, squares)
    }

    /// [`Self::design_with_layout`] for a whole batch of layouts at
    /// once, submitted through [`StagePlan::assemble_batch`] so every
    /// stage-cache miss in the batch shares one allocation scratch
    /// (compiled regions, noise planes, decision buffers).
    ///
    /// Each job may override the flow's frequency strategy and hardware
    /// family — the two knobs the explorer varies per candidate — while
    /// inheriting every other allocation knob from this flow. Results
    /// are bit-identical to per-job [`Self::design_with_layout`] calls
    /// on correspondingly configured flow clones.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::EmptyProgram`] if any job has no qubits
    /// and propagates builder errors for invalid squares.
    pub fn design_with_layout_batch(
        &self,
        jobs: &[LayoutJob<'_>],
    ) -> Result<Vec<Architecture>, DesignError> {
        if jobs.iter().any(|j| j.coords.is_empty()) {
            return Err(DesignError::EmptyProgram);
        }
        let stages: Vec<AssembleStage> = jobs
            .iter()
            .map(|j| {
                let mut stage = self.assemble_stage();
                stage.frequency = j.frequency;
                stage.hardware = j.hardware;
                stage
            })
            .collect();
        let batch: Vec<AssembleJob<'_>> = stages
            .iter()
            .zip(jobs)
            .map(|(stage, j)| AssembleJob { stage, coords: j.coords, squares: j.squares })
            .collect();
        self.plan.assemble_batch(&batch)
    }

    /// The qubit placement only (exposed for the `eff-layout-only`
    /// configuration and diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::EmptyProgram`] for a 0-qubit profile.
    pub fn place(
        &self,
        profile: &CouplingProfile,
    ) -> Result<Vec<qpd_topology::Coord>, DesignError> {
        self.plan.place(&self.placement_stage(), profile)
    }

    /// The bus selection order for this flow's strategy: prefixes of the
    /// returned vector are the selections for smaller budgets.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::EmptyProgram`] for a 0-qubit profile.
    pub fn bus_order(&self, profile: &CouplingProfile) -> Result<Vec<Square>, DesignError> {
        let coords = self.place(profile)?;
        self.plan.bus_order(&self.bus_stage(), &coords, profile)
    }

    /// The placement stage this flow's knobs configure.
    fn placement_stage(&self) -> PlacementStage {
        PlacementStage { auxiliary_qubits: self.auxiliary_qubits }
    }

    /// The bus-selection stage this flow's knobs configure.
    fn bus_stage(&self) -> BusOrderStage {
        BusOrderStage { strategy: self.bus_strategy, max_buses: self.max_buses }
    }

    /// The frequency/assembly stage this flow's knobs configure.
    fn assemble_stage(&self) -> AssembleStage {
        AssembleStage {
            frequency: self.frequency,
            allocation_trials: self.allocation_trials,
            allocation_sweeps: self.allocation_sweeps,
            allocation_seed: self.allocation_seed,
            sigma_ghz: self.sigma_ghz,
            name_prefix: self.name_prefix.clone(),
            hardware: self.hardware,
        }
    }

    fn assemble(
        &self,
        coords: &[qpd_topology::Coord],
        squares: &[Square],
    ) -> Result<Architecture, DesignError> {
        self.plan.assemble(&self.assemble_stage(), coords, squares)
    }

    /// The retained **monolithic** flow: the pre-stage-graph computation,
    /// with no stage decomposition and no caching. Kept as the reference
    /// the equivalence tests compare the facade against, exactly like
    /// the frequency allocator's `with_reference_path`.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::EmptyProgram`] for a 0-qubit profile.
    pub fn design_reference(&self, profile: &CouplingProfile) -> Result<Architecture, DesignError> {
        if profile.num_qubits() == 0 {
            return Err(DesignError::EmptyProgram);
        }
        let mut coords = place_qubits(profile);
        if self.auxiliary_qubits > 0 {
            coords.extend(crate::placement::place_auxiliary(&coords, self.auxiliary_qubits));
        }
        let cap = self.max_buses.unwrap_or(usize::MAX);
        let squares = match self.bus_strategy {
            BusStrategy::Weighted => select_buses_weighted(&coords, profile, cap),
            BusStrategy::Random { seed } => select_buses_random(&coords, cap, seed),
        };
        let model = self.hardware.model();
        let name = format!(
            "{}{}-{}q-b{}{}",
            self.name_prefix,
            self.hardware.name_suffix(),
            coords.len(),
            squares.len(),
            match self.frequency {
                FrequencyStrategy::Optimized => "",
                FrequencyStrategy::FiveFrequency => "-5freq",
            }
        );
        let mut builder = Architecture::builder(name);
        builder.qubits(coords.iter().copied());
        for &s in &squares {
            builder.four_qubit_bus_at(s);
        }
        let arch = builder.build()?;
        let plan: FrequencyPlan = match self.frequency {
            FrequencyStrategy::FiveFrequency => {
                pattern_frequency_plan(&arch, model.pattern_frequencies_ghz())
            }
            FrequencyStrategy::Optimized => FrequencyAllocator::new()
                .with_hardware(self.hardware)
                .with_trials(self.allocation_trials)
                .with_refinement_sweeps(self.allocation_sweeps)
                .with_sigma_ghz(self.sigma_ghz)
                .with_seed(self.allocation_seed)
                .allocate(&arch),
        };
        Ok(arch.with_frequencies_in_band(plan, model.allowed_band_ghz())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::Circuit;
    use qpd_yield::YieldSimulator;

    /// Profile with strong diagonal demand so buses get selected.
    fn grid_profile() -> CouplingProfile {
        // 6 qubits that want a 2x3 block with cross couplings.
        CouplingProfile::from_edges(
            6,
            &[
                (0, 1, 8),
                (1, 2, 8),
                (3, 4, 8),
                (4, 5, 8),
                (0, 4, 6),
                (1, 3, 6),
                (1, 5, 4),
                (2, 4, 4),
                (0, 3, 8),
                (1, 4, 8),
                (2, 5, 8),
            ],
        )
    }

    fn fast_flow() -> DesignFlow {
        DesignFlow::new().with_allocation_trials(200)
    }

    #[test]
    fn full_design_is_valid() {
        let arch = fast_flow().design(&grid_profile()).unwrap();
        assert_eq!(arch.num_qubits(), 6);
        assert!(arch.is_connected());
        assert!(arch.frequencies().is_some());
        assert!(arch.frequencies().unwrap().check_band().is_ok());
    }

    #[test]
    fn series_grows_monotonically_in_buses() {
        let series = fast_flow().design_series(&grid_profile()).unwrap();
        assert!(series.len() >= 2, "expected at least one bus option");
        for (k, arch) in series.iter().enumerate() {
            assert_eq!(arch.four_qubit_buses().len(), k);
        }
        // More buses, more coupling edges.
        for pair in series.windows(2) {
            assert!(pair[1].coupling_edges().len() > pair[0].coupling_edges().len());
        }
    }

    #[test]
    fn chain_profile_yields_single_design() {
        // The ising special case (§5.3.1): chain coupling -> no 4-qubit
        // buses are beneficial -> a single architecture.
        let chain = CouplingProfile::from_edges(5, &[(0, 1, 4), (1, 2, 4), (2, 3, 4), (3, 4, 4)]);
        let series = fast_flow().design_series(&chain).unwrap();
        assert_eq!(series.len(), 1);
        assert!(series[0].four_qubit_buses().is_empty());
    }

    #[test]
    fn five_frequency_strategy_uses_pattern() {
        let arch = fast_flow()
            .with_frequency_strategy(FrequencyStrategy::FiveFrequency)
            .design_with_buses(&grid_profile(), 0)
            .unwrap();
        let plan = arch.frequencies().unwrap();
        for q in 0..arch.num_qubits() {
            let f = plan.ghz(q);
            assert!(
                qpd_topology::FIVE_FREQUENCIES_GHZ.iter().any(|&c| (c - f).abs() < 1e-9),
                "{f} is not a five-scheme frequency"
            );
        }
        assert!(arch.name().ends_with("-5freq"));
    }

    #[test]
    fn random_bus_strategy_is_seeded() {
        let profile = grid_profile();
        let a = fast_flow()
            .with_bus_strategy(BusStrategy::Random { seed: 3 })
            .bus_order(&profile)
            .unwrap();
        let b = fast_flow()
            .with_bus_strategy(BusStrategy::Random { seed: 3 })
            .bus_order(&profile)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn max_buses_cap_respected() {
        let arch = fast_flow().with_max_buses(Some(1)).design(&grid_profile()).unwrap();
        assert!(arch.four_qubit_buses().len() <= 1);
    }

    #[test]
    fn empty_program_errors() {
        let profile = CouplingProfile::of(&Circuit::new(0));
        assert_eq!(fast_flow().design(&profile).unwrap_err(), DesignError::EmptyProgram);
    }

    #[test]
    fn optimized_frequencies_beat_five_scheme_on_yield() {
        // §5.4.3: the frequency allocator should improve yield over the
        // 5-frequency pattern on the same (irregular) topology.
        let profile = grid_profile();
        let with_opt =
            fast_flow().with_allocation_trials(800).design_with_buses(&profile, 1).unwrap();
        let with_five = fast_flow()
            .with_frequency_strategy(FrequencyStrategy::FiveFrequency)
            .design_with_buses(&profile, 1)
            .unwrap();
        let sim = YieldSimulator::new().with_trials(4_000).with_seed(9);
        let y_opt = sim.estimate(&with_opt).unwrap().rate();
        let y_five = sim.estimate(&with_five).unwrap().rate();
        assert!(y_opt >= y_five, "optimized {y_opt} should not lose to five-frequency {y_five}");
    }

    #[test]
    fn explicit_layout_design_matches_flow() {
        // Feeding the flow's own placement and bus order back through the
        // explicit-layout entry point reproduces `design` exactly.
        let profile = grid_profile();
        let flow = fast_flow();
        let coords = flow.place(&profile).unwrap();
        let order = flow.bus_order(&profile).unwrap();
        let via_layout = flow.design_with_layout(&coords, &order).unwrap();
        let via_flow = flow.design(&profile).unwrap();
        assert_eq!(via_layout, via_flow);
    }

    #[test]
    fn empty_layout_errors() {
        let err = fast_flow().design_with_layout(&[], &[]).unwrap_err();
        assert_eq!(err, DesignError::EmptyProgram);
    }

    #[test]
    fn knob_accessors_reflect_configuration() {
        let flow = DesignFlow::new()
            .with_bus_strategy(BusStrategy::Random { seed: 9 })
            .with_frequency_strategy(FrequencyStrategy::FiveFrequency)
            .with_max_buses(Some(3))
            .with_auxiliary_qubits(2)
            .with_allocation_trials(77)
            .with_allocation_sweeps(4)
            .with_allocation_seed(11)
            .with_sigma_ghz(0.02);
        assert_eq!(flow.bus_strategy(), BusStrategy::Random { seed: 9 });
        assert_eq!(flow.frequency_strategy(), FrequencyStrategy::FiveFrequency);
        assert_eq!(flow.max_buses(), Some(3));
        assert_eq!(flow.auxiliary_qubits(), 2);
        assert_eq!(flow.allocation_trials(), 77);
        assert_eq!(flow.allocation_sweeps(), 4);
        assert_eq!(flow.allocation_seed(), 11);
        assert_eq!(flow.sigma_ghz(), 0.02);
    }

    #[test]
    fn facade_matches_the_monolithic_reference() {
        // The stage-graph facade must be bit-identical to the retained
        // monolithic path, cold and warm (the workspace-level proptests
        // widen this over random profiles and knobs).
        let profile = grid_profile();
        for flow in [
            fast_flow(),
            fast_flow().with_frequency_strategy(FrequencyStrategy::FiveFrequency),
            fast_flow().with_bus_strategy(BusStrategy::Random { seed: 5 }).with_auxiliary_qubits(1),
        ] {
            let reference = flow.design_reference(&profile).unwrap();
            let cold = flow.design(&profile).unwrap();
            let warm = flow.design(&profile).unwrap();
            assert_eq!(cold, reference);
            assert_eq!(warm, reference);
        }
    }

    #[test]
    fn clones_share_the_stage_plan() {
        // A frequency-only variant of a flow reuses the placement and
        // bus work of the original: the load-bearing property for the
        // explorer's freq-only moves.
        let profile = grid_profile();
        let flow = fast_flow();
        flow.design(&profile).unwrap();
        let assemble_misses = flow.plan().assemble_cache().misses();
        let five = flow.clone().with_frequency_strategy(FrequencyStrategy::FiveFrequency);
        five.design(&profile).unwrap();
        let stats = five.plan().stats();
        // Placement and bus selection were served from the shared cache…
        assert_eq!(stats[0].kind, crate::stage::StageKind::Placement);
        assert!(stats[0].hits >= 1, "placement re-ran on a freq-only change");
        assert!(stats[1].hits >= 1, "bus selection re-ran on a freq-only change");
        // …while the frequency stage (different strategy => new key) ran.
        assert!(five.plan().assemble_cache().misses() > assemble_misses);
    }

    #[test]
    fn hardware_family_threads_through_facade_and_reference() {
        let profile = grid_profile();
        for family in HardwareFamily::ALL {
            let flow = fast_flow().with_hardware(family);
            assert_eq!(flow.hardware(), family);
            let facade = flow.design_with_buses(&profile, 0).unwrap();
            let reference = flow.design_reference(&profile).unwrap();
            // The facade stays bit-identical to the monolithic reference
            // on every family, and the plan lands in the family band.
            // (design_reference runs the full flow, so compare against
            // the matching bus budget.)
            let full = flow.design(&profile).unwrap();
            assert_eq!(full, reference);
            let band = family.model().allowed_band_ghz();
            assert!(facade.frequencies().unwrap().check_band_within(band).is_ok());
            let suffix = family.name_suffix();
            assert!(
                facade.name().starts_with(&format!("eff{suffix}-")),
                "name {} missing family suffix {suffix:?}",
                facade.name()
            );
        }
        // Families produce genuinely different designs.
        let fixed = fast_flow().design_with_buses(&profile, 0).unwrap();
        let tc = fast_flow()
            .with_hardware(HardwareFamily::TunableCoupler)
            .design_with_buses(&profile, 0)
            .unwrap();
        assert_ne!(fixed.frequencies(), tc.frequencies());
    }

    #[test]
    fn with_plan_shares_caches_across_flows() {
        // Satellite: the evaluation runner routes every benchmark flow
        // through one plan. Two flows built independently but attached
        // to the same plan must reuse each other's upstream work.
        let profile = grid_profile();
        let plan = Arc::new(crate::stage::StagePlan::new());
        let a = fast_flow().with_plan(Arc::clone(&plan));
        a.design_with_buses(&profile, 0).unwrap();
        let misses = plan.placement_cache().misses();
        let b = fast_flow()
            .with_frequency_strategy(FrequencyStrategy::FiveFrequency)
            .with_plan(Arc::clone(&plan));
        b.design_with_buses(&profile, 0).unwrap();
        assert_eq!(plan.placement_cache().misses(), misses, "placement re-ran");
        assert!(plan.placement_cache().hits() >= 1);
    }

    #[test]
    fn naming_scheme() {
        let arch =
            fast_flow().with_name_prefix("demo").design_with_buses(&grid_profile(), 0).unwrap();
        assert_eq!(arch.name(), "demo-6q-b0");
    }

    #[test]
    fn auxiliary_qubits_extend_the_chip() {
        let profile = grid_profile();
        let plain = fast_flow().design_with_buses(&profile, 0).unwrap();
        let extended = fast_flow().with_auxiliary_qubits(2).design_with_buses(&profile, 0).unwrap();
        assert_eq!(extended.num_qubits(), plain.num_qubits() + 2);
        assert!(extended.is_connected());
        assert!(extended.coupling_edges().len() > plain.coupling_edges().len());
        // Yield can only suffer from the extra hardware.
        let sim = YieldSimulator::new().with_trials(4_000).with_seed(4);
        let y_plain = sim.estimate(&plain).unwrap().rate();
        let y_ext = sim.estimate(&extended).unwrap().rate();
        assert!(y_ext <= y_plain + 0.03, "{y_ext} vs {y_plain}");
    }
}
