//! Layout design: coupling-based qubit placement (paper Algorithm 1).

use std::collections::BTreeSet;

use qpd_profile::CouplingProfile;
use qpd_topology::Coord;

/// Places every logical qubit of the profiled program on a 2D lattice
/// node; the returned vector maps logical qubit `i` to its coordinate.
///
/// The algorithm follows the paper:
///
/// - the qubit with the largest coupling degree seeds the layout at
///   `(0, 0)`;
/// - each following step places the highest-coupling-degree qubit among
///   those connected to an already placed qubit;
/// - it goes on the empty frontier node minimizing
///   `sum over placed neighbors q' of M[q][q'] * manhattan(node, q')`
///   (Algorithm 1, line 13).
///
/// Ties break deterministically: by qubit order in the coupling degree
/// list, and by `(row, col)` among equal-cost nodes. Programs whose
/// logical coupling graph is disconnected (or has isolated qubits) seed
/// each new component on the frontier of the existing cluster, keeping
/// the chip compact and connected.
///
/// # Panics
///
/// Panics if the profile covers zero qubits.
pub fn place_qubits(profile: &CouplingProfile) -> Vec<Coord> {
    let n = profile.num_qubits();
    assert!(n > 0, "cannot place zero qubits");

    let degree_list = profile.degree_list();
    let mut placed: Vec<Option<Coord>> = vec![None; n];
    let mut occupied: BTreeSet<Coord> = BTreeSet::new();
    let mut remaining: Vec<usize> = degree_list.iter().map(|(q, _)| q.index()).collect();

    // Seed: the first entry of the coupling degree list at (0, 0).
    let seed = remaining.remove(0);
    placed[seed] = Some(Coord::new(0, 0));
    occupied.insert(Coord::new(0, 0));

    while !remaining.is_empty() {
        // Next qubit: highest coupling degree among those adjacent (in the
        // logical coupling graph) to a placed qubit; `remaining` is in
        // degree-list order, so the first match wins.
        let pick_pos = remaining
            .iter()
            .position(|&q| profile.neighbors(q).iter().any(|&nb| placed[nb].is_some()))
            .unwrap_or(0); // disconnected component: next by degree
        let q = remaining.remove(pick_pos);

        // Frontier: empty nodes adjacent to at least one occupied node.
        let frontier: BTreeSet<Coord> = occupied
            .iter()
            .flat_map(|c| c.neighbors4())
            .filter(|c| !occupied.contains(c))
            .collect();

        // Cost of a location: sum over placed logical-coupling neighbors
        // of (coupling strength) * (manhattan distance). Equal-cost nodes
        // (common: the example of paper Figure 6 ties on six nodes) break
        // toward the seed at (0, 0) — "closest to q4" in the paper's
        // walkthrough — keeping the layout compact; then by (row, col).
        let mut best: Option<(u64, u32, Coord)> = None;
        for &loc in &frontier {
            let mut cost = 0u64;
            for &nb in &profile.neighbors(q) {
                if let Some(nb_coord) = placed[nb] {
                    cost += profile.strength(q, nb) as u64 * loc.manhattan(nb_coord) as u64;
                }
            }
            let candidate = (cost, loc.manhattan(Coord::new(0, 0)), loc);
            if best.is_none_or(|b| candidate < b) {
                best = Some(candidate);
            }
        }
        let (_, _, loc) = best.expect("frontier of a non-empty layout is never empty");
        placed[q] = Some(loc);
        occupied.insert(loc);
    }

    placed.into_iter().map(|c| c.expect("all qubits placed")).collect()
}

/// Chooses lattice nodes for `count` auxiliary physical qubits around an
/// existing placement (paper §6, "Exploring More Design Space": extra
/// qubits used only for routing, trading yield for performance).
///
/// Auxiliary qubits go on empty frontier nodes with the most occupied
/// neighbors — each one opens the largest number of new routing edges
/// per qubit spent. Ties prefer nodes closest to the layout centroid,
/// then lexicographic `(row, col)`.
///
/// # Panics
///
/// Panics if `coords` is empty.
pub fn place_auxiliary(coords: &[Coord], count: usize) -> Vec<Coord> {
    assert!(!coords.is_empty(), "cannot extend an empty placement");
    let mut occupied: BTreeSet<Coord> = coords.iter().copied().collect();
    let centroid_row = coords.iter().map(|c| c.row as f64).sum::<f64>() / coords.len() as f64;
    let centroid_col = coords.iter().map(|c| c.col as f64).sum::<f64>() / coords.len() as f64;
    let mut added = Vec::with_capacity(count);
    for _ in 0..count {
        let frontier: BTreeSet<Coord> = occupied
            .iter()
            .flat_map(|c| c.neighbors4())
            .filter(|c| !occupied.contains(c))
            .collect();
        let best = frontier
            .into_iter()
            .max_by(|a, b| {
                let occ =
                    |c: &Coord| c.neighbors4().iter().filter(|n| occupied.contains(n)).count();
                let dist = |c: &Coord| {
                    (c.row as f64 - centroid_row).powi(2) + (c.col as f64 - centroid_col).powi(2)
                };
                occ(a).cmp(&occ(b)).then_with(|| dist(b).total_cmp(&dist(a))).then_with(|| b.cmp(a))
            })
            .expect("frontier of a non-empty layout is never empty");
        occupied.insert(best);
        added.push(best);
    }
    added
}

/// Total weighted wirelength of a placement: for every coupled logical
/// pair, coupling strength times lattice distance. Lower is better; the
/// quantity Algorithm 1 greedily minimizes, exposed for evaluation and
/// tests.
pub fn weighted_wirelength(profile: &CouplingProfile, coords: &[Coord]) -> u64 {
    profile
        .edges()
        .iter()
        .map(|e| e.weight as u64 * coords[e.a.index()].manhattan(coords[e.b.index()]) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_profile::CouplingProfile;

    fn coords_are_unique(coords: &[Coord]) -> bool {
        let set: BTreeSet<&Coord> = coords.iter().collect();
        set.len() == coords.len()
    }

    fn is_lattice_connected(coords: &[Coord]) -> bool {
        let set: BTreeSet<Coord> = coords.iter().copied().collect();
        let mut seen = BTreeSet::new();
        let mut stack = vec![coords[0]];
        seen.insert(coords[0]);
        while let Some(c) = stack.pop() {
            for nb in c.neighbors4() {
                if set.contains(&nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        seen.len() == coords.len()
    }

    #[test]
    fn chain_program_gets_chain_layout() {
        // A pure chain should place as a path with every coupled pair
        // adjacent (wirelength == total weight).
        let profile = CouplingProfile::from_edges(5, &[(0, 1, 4), (1, 2, 4), (2, 3, 4), (3, 4, 4)]);
        let coords = place_qubits(&profile);
        assert!(coords_are_unique(&coords));
        assert!(is_lattice_connected(&coords));
        for e in profile.edges() {
            assert_eq!(
                coords[e.a.index()].manhattan(coords[e.b.index()]),
                1,
                "chain edge {e:?} not adjacent"
            );
        }
    }

    #[test]
    fn star_center_is_surrounded() {
        // Star with 4 leaves: all 4 can sit adjacent to the hub.
        let profile = CouplingProfile::from_edges(5, &[(0, 1, 5), (0, 2, 5), (0, 3, 5), (0, 4, 5)]);
        let coords = place_qubits(&profile);
        for leaf in 1..5 {
            assert_eq!(coords[0].manhattan(coords[leaf]), 1, "leaf {leaf} not adjacent to hub");
        }
    }

    #[test]
    fn strongly_coupled_pairs_win_adjacency() {
        // q0-q1 heavy, q0-q2 light, and q1, q2 both coupled to q3 lightly:
        // the heavy pair must be adjacent.
        let profile =
            CouplingProfile::from_edges(4, &[(0, 1, 100), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let coords = place_qubits(&profile);
        assert_eq!(coords[0].manhattan(coords[1]), 1);
    }

    #[test]
    fn figure4_example_placement() {
        // Figure 6 walks Algorithm 1 on the Figure 4 profile: q4 at the
        // seed, its four neighbors on the four adjacent nodes.
        let profile = CouplingProfile::from_edges(
            5,
            &[(0, 4, 2), (0, 1, 1), (1, 4, 1), (2, 4, 1), (3, 4, 1)],
        );
        let coords = place_qubits(&profile);
        // q4 seeds at the origin.
        assert_eq!(coords[4], Coord::new(0, 0));
        // All of q0..q3 are adjacent to q4 (they fill its four neighbors).
        for q in 0..4 {
            assert_eq!(coords[q].manhattan(coords[4]), 1, "q{q} not adjacent to hub q4");
        }
    }

    #[test]
    fn disconnected_components_stay_compact() {
        let profile = CouplingProfile::from_edges(4, &[(0, 1, 3), (2, 3, 3)]);
        let coords = place_qubits(&profile);
        assert!(coords_are_unique(&coords));
        assert!(is_lattice_connected(&coords));
    }

    #[test]
    fn isolated_qubits_are_still_placed() {
        let profile = CouplingProfile::from_edges(3, &[(0, 1, 1)]);
        let coords = place_qubits(&profile);
        assert_eq!(coords.len(), 3);
        assert!(coords_are_unique(&coords));
        assert!(is_lattice_connected(&coords));
    }

    #[test]
    fn single_qubit_program() {
        let profile = CouplingProfile::from_edges(1, &[]);
        assert_eq!(place_qubits(&profile), vec![Coord::new(0, 0)]);
    }

    #[test]
    fn placement_is_deterministic() {
        let profile = CouplingProfile::from_edges(
            6,
            &[(0, 1, 2), (1, 2, 7), (2, 3, 1), (3, 4, 9), (4, 5, 2), (5, 0, 4)],
        );
        assert_eq!(place_qubits(&profile), place_qubits(&profile));
    }

    #[test]
    fn wirelength_beats_pathological_order() {
        // The greedy placement should do far better than placing qubits
        // in a straight line in index order for a star program.
        let profile = CouplingProfile::from_edges(
            7,
            &[(0, 1, 9), (0, 2, 9), (0, 3, 9), (0, 4, 9), (0, 5, 9), (0, 6, 9)],
        );
        let coords = place_qubits(&profile);
        let greedy = weighted_wirelength(&profile, &coords);
        let line: Vec<Coord> = (0..7).map(|i| Coord::new(0, i)).collect();
        let naive = weighted_wirelength(&profile, &line);
        assert!(greedy < naive, "greedy {greedy} vs naive {naive}");
    }
}
