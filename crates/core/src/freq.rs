//! Frequency allocation (paper Algorithm 3).

use std::collections::VecDeque;

use qpd_topology::{Architecture, FrequencyPlan, ALLOWED_BAND_GHZ};
use qpd_yield::{
    AllocScratch, CollisionParams, CompiledRegions, FabricationModel, HardwareFamily,
    LocalYieldEvaluator,
};

/// Center-out breadth-first frequency allocator.
///
/// Starting from the qubit nearest the layout's geometric center (which
/// tends to have the most connections and hence the most collision
/// exposure), assign the band midpoint; then walk the coupling graph in
/// BFS order, and for each newly reached qubit evaluate every candidate
/// frequency by Monte Carlo yield *within the qubit's local region*
/// (distance <= 2, already-assigned qubits only), assigning the argmax.
///
/// Candidates default to the paper's grid: 5.00, 5.01, ..., 5.34 GHz
/// (10 MHz accuracy). Ties prefer the candidate nearest the band
/// midpoint, then the lower frequency, making allocation deterministic.
#[derive(Debug, Clone)]
pub struct FrequencyAllocator {
    candidates: Vec<f64>,
    band: (f64, f64),
    trials: usize,
    model: FabricationModel,
    params: CollisionParams,
    seed: u64,
    refinement_sweeps: usize,
    reference_path: bool,
    hardware: HardwareFamily,
}

impl Default for FrequencyAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl FrequencyAllocator {
    /// An allocator with 35 candidates at 10 MHz steps and local
    /// simulations at `sigma = 30 MHz` (the paper's grid), plus up to
    /// eight refinement sweeps (they stop early at a fixed point).
    pub fn new() -> Self {
        FrequencyAllocator {
            candidates: Self::grid(ALLOWED_BAND_GHZ),
            band: ALLOWED_BAND_GHZ,
            trials: 4_000,
            model: FabricationModel::default(),
            params: CollisionParams::default(),
            seed: 0,
            refinement_sweeps: 8,
            reference_path: false,
            hardware: HardwareFamily::FixedFrequencyTransmon,
        }
    }

    /// The 10 MHz candidate grid spanning `band`, endpoints included.
    fn grid(band: (f64, f64)) -> Vec<f64> {
        let (lo, hi) = band;
        let steps = ((hi - lo) / 0.01).round() as usize;
        (0..=steps).map(|i| lo + 0.01 * i as f64).collect()
    }

    /// Retargets the allocator at a hardware family: adopts its allowed
    /// band (and rebuilds the 10 MHz candidate grid over it), its
    /// collision parameters, and — at evaluation time — its effective
    /// fabrication noise. Call this *before* fine-grained overrides like
    /// [`Self::with_candidates`] or [`Self::with_params`]; the default
    /// family leaves the allocator exactly as [`Self::new`] built it.
    pub fn with_hardware(mut self, hardware: HardwareFamily) -> Self {
        let model = hardware.model();
        self.hardware = hardware;
        self.band = model.allowed_band_ghz();
        self.candidates = Self::grid(self.band);
        self.params = model.collision_params();
        self
    }

    /// Switches candidate evaluation to the retained pre-overhaul
    /// reference path: the naive serial evaluator
    /// ([`LocalYieldEvaluator::evaluate_candidates_reference`]) fed by
    /// the historical single-draw noise stream. `bench_snapshot` uses
    /// this to anchor the performance baseline; the emitted plan is *not*
    /// bit-comparable to the default path because the noise stream
    /// differs.
    pub fn with_reference_path(mut self) -> Self {
        self.reference_path = true;
        self
    }

    /// Sets the number of refinement sweeps after the center-out pass.
    ///
    /// Each sweep revisits every qubit (in the original BFS order) and
    /// re-runs the candidate search with *all* other qubits assigned —
    /// the same local-yield primitive as Algorithm 3, iterated to
    /// relieve the greedy pass's myopia. The paper's §6 ("Optimizing
    /// Frequency Allocation") points exactly at this direction; zero
    /// sweeps reproduce the paper's single-pass algorithm.
    pub fn with_refinement_sweeps(mut self, sweeps: usize) -> Self {
        self.refinement_sweeps = sweeps;
        self
    }

    /// Overrides the candidate frequency list (GHz).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn with_candidates(mut self, candidates: Vec<f64>) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate frequency");
        self.candidates = candidates;
        self
    }

    /// Sets the local-simulation trial count (trade accuracy for speed).
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn with_trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        self.trials = trials;
        self
    }

    /// Sets the assumed fabrication precision in GHz.
    pub fn with_sigma_ghz(mut self, sigma_ghz: f64) -> Self {
        self.model = FabricationModel::new(sigma_ghz);
        self
    }

    /// Sets the collision parameters.
    pub fn with_params(mut self, params: CollisionParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the RNG seed for the local Monte Carlo evaluations.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The candidate frequencies in GHz.
    pub fn candidates(&self) -> &[f64] {
        &self.candidates
    }

    /// Allocates a frequency for every qubit of `arch`.
    ///
    /// The local regions are compiled once per call
    /// ([`CompiledRegions`]) and shared by every decision of the BFS
    /// pass and all refinement sweeps; candidate evaluation fans out
    /// over the `qpd-par` worker pool. The result is deterministic in
    /// the seed and independent of the thread count.
    ///
    /// Callers allocating repeatedly (or for several proposals at once)
    /// should prefer [`Self::allocate_with`] or
    /// [`Self::allocate_batch`], which reuse compiled regions and
    /// cached noise planes across calls; the emitted plans are
    /// bit-identical either way.
    pub fn allocate(&self, arch: &Architecture) -> FrequencyPlan {
        let regions = CompiledRegions::new(arch);
        let mut scratch = AllocScratch::new();
        self.allocate_with(arch, &regions, &mut scratch)
    }

    /// Allocates frequencies for every proposal in `archs`, sharing one
    /// allocation scratch — and therefore the cached noise planes —
    /// across the whole batch.
    ///
    /// The common-random-numbers streams depend only on the allocator
    /// seed, the qubit index, and the noise sigma, never on the
    /// topology, so proposals after the first skip stream generation
    /// entirely. Each plan is bit-identical to `allocate` on that
    /// architecture alone; the test suite proves it.
    pub fn allocate_batch(&self, archs: &[&Architecture]) -> Vec<FrequencyPlan> {
        let mut scratch = AllocScratch::new();
        archs
            .iter()
            .map(|arch| {
                let regions = CompiledRegions::new(arch);
                self.allocate_with(arch, &regions, &mut scratch)
            })
            .collect()
    }

    /// [`Self::allocate`] against a prebuilt [`CompiledRegions`] table
    /// and a caller-held [`AllocScratch`] — the batched hot path.
    ///
    /// `regions` must have been compiled from `arch`; the scratch may
    /// be shared freely across calls, architectures, and allocator
    /// configurations without affecting any plan.
    ///
    /// # Panics
    ///
    /// Panics if `regions` was compiled from an architecture with a
    /// different qubit count.
    pub fn allocate_with(
        &self,
        arch: &Architecture,
        regions: &CompiledRegions,
        scratch: &mut AllocScratch,
    ) -> FrequencyPlan {
        assert_eq!(regions.num_qubits(), arch.num_qubits(), "regions/architecture mismatch");
        let n = arch.num_qubits();
        let (lo, hi) = self.band;
        let mid = (lo + hi) / 2.0;
        let evaluate = |evaluator: &LocalYieldEvaluator,
                        assigned: &[Option<f64>],
                        q: usize,
                        scratch: &mut AllocScratch|
         -> Vec<u64> {
            if self.reference_path {
                evaluator.evaluate_candidates_reference(arch, assigned, q, &self.candidates)
            } else {
                evaluator.evaluate_candidates_compiled_with(
                    regions,
                    assigned,
                    q,
                    &self.candidates,
                    scratch,
                )
            }
        };
        let evaluator = self.evaluator(self.seed);
        let mut assigned: Vec<Option<f64>> = vec![None; n];

        // Seed the BFS at the central qubit with the band midpoint, per
        // Algorithm 3 line 1.
        let center = arch.center_qubit();
        assigned[center] = Some(self.snap_to_candidate(mid));

        let mut queue = VecDeque::from([center]);
        let mut enqueued = vec![false; n];
        enqueued[center] = true;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        while let Some(q) = queue.pop_front() {
            order.push(q);
            for &nb in arch.neighbors(q) {
                if !enqueued[nb] {
                    enqueued[nb] = true;
                    queue.push_back(nb);
                }
            }
        }
        // Disconnected architectures (not produced by the flow, but legal
        // inputs): append stragglers in index order.
        order.extend((0..n).filter(|&q| !enqueued[q]));

        for &q in order.iter().skip(1) {
            let counts = evaluate(&evaluator, &assigned, q, scratch);
            assigned[q] = Some(self.candidates[self.argmax(&counts)]);
        }

        // Refinement sweeps: re-optimize each qubit with full context.
        for sweep in 0..self.refinement_sweeps {
            let sweep_evaluator = self
                .evaluator(self.seed ^ (0xa076_1d64_78bd_642fu64.wrapping_mul(sweep as u64 + 1)));
            let mut changed = false;
            for &q in &order {
                let current = assigned[q].take().expect("assigned in first pass");
                let counts = evaluate(&sweep_evaluator, &assigned, q, scratch);
                let best = self.candidates[self.argmax(&counts)];
                if (best - current).abs() > 1e-12 {
                    changed = true;
                }
                assigned[q] = Some(best);
            }
            if !changed {
                break;
            }
        }

        FrequencyPlan::new(assigned.into_iter().map(|f| f.expect("all assigned")).collect())
    }

    fn evaluator(&self, seed: u64) -> LocalYieldEvaluator {
        let model = FabricationModel::new(
            self.hardware.model().effective_sigma_ghz(self.model.sigma_ghz()),
        );
        let evaluator = LocalYieldEvaluator::new(self.trials, model, self.params, seed);
        if self.reference_path {
            evaluator.with_legacy_noise()
        } else {
            evaluator
        }
    }

    fn argmax(&self, counts: &[u64]) -> usize {
        let mut best = 0usize;
        for i in 1..self.candidates.len() {
            if self.candidate_beats(counts, i, best) {
                best = i;
            }
        }
        best
    }

    /// Whether candidate `i` beats candidate `best` under the
    /// deterministic tie-break (higher count, then nearer the band
    /// midpoint, then lower frequency).
    fn candidate_beats(&self, counts: &[u64], i: usize, best: usize) -> bool {
        let (lo, hi) = self.band;
        let mid = (lo + hi) / 2.0;
        if counts[i] != counts[best] {
            return counts[i] > counts[best];
        }
        let di = (self.candidates[i] - mid).abs();
        let db = (self.candidates[best] - mid).abs();
        if (di - db).abs() > 1e-12 {
            return di < db;
        }
        self.candidates[i] < self.candidates[best]
    }

    /// The candidate closest to `target` (the seed must also come from
    /// the candidate grid so hardware only needs the advertised
    /// accuracy).
    fn snap_to_candidate(&self, target: f64) -> f64 {
        *self
            .candidates
            .iter()
            .min_by(|a, b| (*a - target).abs().total_cmp(&(*b - target).abs()))
            .expect("candidates non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_topology::Architecture;
    use qpd_yield::YieldSimulator;

    fn line(n: i32) -> Architecture {
        let mut b = Architecture::builder(format!("line{n}"));
        for c in 0..n {
            b.qubit(0, c);
        }
        b.build().unwrap()
    }

    fn fast_allocator() -> FrequencyAllocator {
        FrequencyAllocator::new().with_trials(300)
    }

    #[test]
    fn all_qubits_assigned_in_band() {
        let arch = line(6);
        let plan = fast_allocator().allocate(&arch);
        assert_eq!(plan.len(), 6);
        assert!(plan.check_band().is_ok());
    }

    #[test]
    fn center_gets_band_midpoint() {
        // Algorithm 3 line 1 seeds the central qubit with the band
        // midpoint. Refinement sweeps are free to move it afterwards if
        // local yield improves, so assert on the single-pass algorithm.
        let arch = line(5);
        let plan = fast_allocator().with_refinement_sweeps(0).allocate(&arch);
        let center = arch.center_qubit();
        assert!((plan.ghz(center) - 5.17).abs() < 1e-9);
    }

    #[test]
    fn neighbors_are_not_degenerate() {
        // The allocator must avoid condition-1 collisions between
        // neighbors at design time.
        let arch = line(8);
        let plan = fast_allocator().allocate(&arch);
        for &(a, b) in arch.coupling_edges() {
            let d = (plan.ghz(a) - plan.ghz(b)).abs();
            assert!(d > 0.017, "neighbors {a},{b} nearly degenerate: {d}");
        }
    }

    #[test]
    fn allocation_is_deterministic() {
        let arch = line(6);
        let a = fast_allocator().allocate(&arch);
        let b = fast_allocator().allocate(&arch);
        assert_eq!(a, b);
    }

    #[test]
    fn allocation_is_thread_count_invariant() {
        let arch = line(6);
        let allocator = fast_allocator();
        let serial = qpd_par::with_threads(1, || allocator.allocate(&arch));
        for threads in [2, 8] {
            let pooled = qpd_par::with_threads(threads, || allocator.allocate(&arch));
            assert_eq!(serial, pooled, "threads {threads}");
        }
    }

    #[test]
    fn reference_path_allocates_a_valid_plan() {
        // The retained pre-overhaul path still produces in-band,
        // non-degenerate plans (it is the bench_snapshot baseline).
        let arch = line(5);
        let plan = fast_allocator().with_reference_path().allocate(&arch);
        assert_eq!(plan.len(), 5);
        assert!(plan.check_band().is_ok());
        for &(a, b) in arch.coupling_edges() {
            assert!((plan.ghz(a) - plan.ghz(b)).abs() > 0.017);
        }
    }

    #[test]
    fn beats_degenerate_plan_on_yield() {
        let arch = line(5);
        let optimized = fast_allocator().allocate(&arch);
        let sim = YieldSimulator::new().with_trials(3_000).with_seed(3);
        let y_opt = sim.estimate_with_frequencies(&arch, optimized.as_slice()).rate();
        let y_flat = sim.estimate_with_frequencies(&arch, &[5.17; 5]).rate();
        assert!(y_opt > y_flat, "optimized {y_opt} should beat flat {y_flat}");
    }

    #[test]
    fn custom_candidates_are_respected() {
        let arch = line(3);
        let allocator = fast_allocator().with_candidates(vec![5.05, 5.15, 5.25]).with_trials(200);
        let plan = allocator.allocate(&arch);
        for q in 0..3 {
            let f = plan.ghz(q);
            assert!(
                [5.05, 5.15, 5.25].iter().any(|&c| (c - f).abs() < 1e-12),
                "frequency {f} not from the candidate grid"
            );
        }
    }

    #[test]
    fn default_hardware_is_transparent() {
        // with_hardware(default) must reproduce the plain allocator's
        // plan bit for bit — the refactor contract.
        let arch = line(6);
        let plain = fast_allocator().allocate(&arch);
        let tagged =
            fast_allocator().with_hardware(HardwareFamily::FixedFrequencyTransmon).allocate(&arch);
        assert_eq!(plain, tagged);
    }

    #[test]
    fn hardware_band_drives_grid_and_plan() {
        use qpd_topology::{HEAVY_HEX_BAND_GHZ, TUNABLE_COUPLER_BAND_GHZ};
        let arch = line(5);
        for (family, band) in [
            (HardwareFamily::TunableCoupler, TUNABLE_COUPLER_BAND_GHZ),
            (HardwareFamily::HeavyHex, HEAVY_HEX_BAND_GHZ),
        ] {
            let allocator = FrequencyAllocator::new().with_hardware(family).with_trials(300);
            let (lo, hi) = band;
            let grid = allocator.candidates();
            assert!((grid[0] - lo).abs() < 1e-9, "{family:?} grid start");
            assert!((grid[grid.len() - 1] - hi).abs() < 1e-9, "{family:?} grid end");
            let plan = allocator.allocate(&arch);
            assert!(plan.check_band_within(band).is_ok(), "{family:?} plan in band");
            // The center seed is the family band's midpoint, not the
            // fixed-frequency one.
            let mid = (lo + hi) / 2.0;
            let single = allocator.with_refinement_sweeps(0).allocate(&line(1));
            assert!((single.ghz(0) - mid).abs() < 0.011, "{family:?} center seed");
        }
    }

    #[test]
    fn batch_matches_singleton_allocations() {
        // The load-bearing batching contract: sharing noise planes
        // across proposals never changes a plan.
        let archs = [line(4), line(6), line(4), line(9)];
        let refs: Vec<&Architecture> = archs.iter().collect();
        let allocator = fast_allocator();
        let batched = allocator.allocate_batch(&refs);
        for (arch, plan) in archs.iter().zip(&batched) {
            assert_eq!(*plan, allocator.allocate(arch), "arch {}", arch.name());
        }
    }

    #[test]
    fn scratch_reuse_across_calls_is_transparent() {
        let arch = line(7);
        let allocator = fast_allocator();
        let fresh = allocator.allocate(&arch);
        let regions = CompiledRegions::new(&arch);
        let mut scratch = qpd_yield::AllocScratch::new();
        // Warm the scratch on a different topology and config first.
        let other = line(5);
        let other_regions = CompiledRegions::new(&other);
        allocator.clone().with_trials(200).allocate_with(&other, &other_regions, &mut scratch);
        for _ in 0..2 {
            assert_eq!(allocator.allocate_with(&arch, &regions, &mut scratch), fresh);
        }
    }

    #[test]
    fn batch_reference_path_matches_too() {
        // The retained pre-overhaul path ignores the scratch but must
        // flow through the batched entry points unchanged.
        let archs = [line(3), line(4)];
        let refs: Vec<&Architecture> = archs.iter().collect();
        let allocator = fast_allocator().with_reference_path();
        let batched = allocator.allocate_batch(&refs);
        for (arch, plan) in archs.iter().zip(&batched) {
            assert_eq!(*plan, allocator.allocate(arch));
        }
    }

    #[test]
    fn single_qubit_architecture() {
        let arch = line(1);
        let plan = fast_allocator().allocate(&arch);
        assert_eq!(plan.len(), 1);
        assert!((plan.ghz(0) - 5.17).abs() < 1e-9);
    }

    #[test]
    fn disconnected_architecture_still_fully_assigned() {
        let mut b = Architecture::builder("disc");
        b.qubit(0, 0).qubit(0, 1).qubit(5, 5);
        let arch = b.build().unwrap();
        let plan = fast_allocator().allocate(&arch);
        assert_eq!(plan.len(), 3);
        assert!(plan.check_band().is_ok());
    }
}
