//! Pareto-front extraction: the 2-axis (performance, yield) form the
//! paper plots, and the N-axis generalization the design-space explorer
//! (`qpd-explore`) uses for yield / gate count / depth / hardware cost.

/// Indices of the Pareto-optimal points among `(performance, yield)`
/// pairs where **larger is better on both axes** (the paper plots
/// normalized reciprocal gate count against yield rate, Figure 10).
///
/// A point is Pareto-optimal when no other point is at least as good on
/// both axes and strictly better on one. Returned indices are in input
/// order.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let (pi, yi) = points[i];
            !points
                .iter()
                .enumerate()
                .any(|(j, &(pj, yj))| j != i && pj >= pi && yj >= yi && (pj > pi || yj > yi))
        })
        .collect()
}

/// Whether point `a` (performance, yield) dominates point `b`: at least
/// as good on both axes and strictly better on one.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 >= b.0 && a.1 >= b.1 && (a.0 > b.0 || a.1 > b.1)
}

/// Whether point `a` dominates point `b` in N dimensions, **larger is
/// better on every axis**: at least as good everywhere and strictly
/// better somewhere. Axes to be minimized should be negated by the
/// caller before the comparison.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dominates_nd(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the Pareto-optimal points among N-dimensional points where
/// **larger is better on every axis** ([`dominates_nd`]'s convention).
/// Returned indices are in input order; exact duplicates all survive.
///
/// # Panics
///
/// Panics if the points have inconsistent dimensions.
pub fn pareto_front_nd(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().enumerate().any(|(j, p)| j != i && dominates_nd(p, &points[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_of_staircase() {
        // A descending staircase: every point is optimal.
        let pts = vec![(1.0, 0.9), (2.0, 0.5), (3.0, 0.1)];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn dominated_points_removed() {
        let pts = vec![(1.0, 0.9), (2.0, 0.95), (0.5, 0.5)];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    fn duplicates_both_survive() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn dominance_relation() {
        assert!(dominates((2.0, 0.5), (1.0, 0.5)));
        assert!(dominates((2.0, 0.6), (1.0, 0.5)));
        assert!(!dominates((2.0, 0.4), (1.0, 0.5)));
        assert!(!dominates((1.0, 0.5), (1.0, 0.5)));
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn nd_dominance_relation() {
        assert!(dominates_nd(&[1.0, 2.0, 3.0], &[1.0, 2.0, 2.0]));
        assert!(!dominates_nd(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]));
        assert!(!dominates_nd(&[1.0, 2.0, 3.0], &[0.0, 3.0, 3.0]));
    }

    #[test]
    fn nd_front_matches_2d_front_on_pairs() {
        let pts = [(1.0, 0.9), (2.0, 0.95), (0.5, 0.5), (3.0, 0.1)];
        let as_nd: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a, b]).collect();
        assert_eq!(pareto_front_nd(&as_nd), pareto_front(&pts));
    }

    #[test]
    fn nd_front_keeps_axis_specialists() {
        // Each point is best on one axis: all three are non-dominated.
        let pts = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
            vec![0.0, 0.0, 3.0],
            vec![0.5, 0.5, 0.5],
        ];
        assert_eq!(pareto_front_nd(&pts), vec![0, 1, 2, 3]);
        // But a point dominated on every axis falls off.
        let pts2 = vec![vec![3.0, 3.0, 3.0], vec![1.0, 2.0, 3.0]];
        assert_eq!(pareto_front_nd(&pts2), vec![0]);
    }

    #[test]
    fn nd_duplicates_both_survive() {
        let pts = vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]];
        assert_eq!(pareto_front_nd(&pts), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn nd_dimension_mismatch_panics() {
        dominates_nd(&[1.0], &[1.0, 2.0]);
    }
}
