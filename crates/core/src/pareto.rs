//! Pareto-front extraction: the 2-axis (performance, yield) form the
//! paper plots, and the N-axis generalization the design-space explorer
//! (`qpd-explore`) uses for yield / gate count / depth / hardware cost.

/// Indices of the Pareto-optimal points among `(performance, yield)`
/// pairs where **larger is better on both axes** (the paper plots
/// normalized reciprocal gate count against yield rate, Figure 10).
///
/// A point is Pareto-optimal when no other point is at least as good on
/// both axes and strictly better on one. Returned indices are in input
/// order.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let (pi, yi) = points[i];
            !points
                .iter()
                .enumerate()
                .any(|(j, &(pj, yj))| j != i && pj >= pi && yj >= yi && (pj > pi || yj > yi))
        })
        .collect()
}

/// Whether point `a` (performance, yield) dominates point `b`: at least
/// as good on both axes and strictly better on one.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 >= b.0 && a.1 >= b.1 && (a.0 > b.0 || a.1 > b.1)
}

/// Whether point `a` dominates point `b` in N dimensions, **larger is
/// better on every axis**: at least as good everywhere and strictly
/// better somewhere. Axes to be minimized should be negated by the
/// caller before the comparison.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dominates_nd(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the Pareto-optimal points among N-dimensional points where
/// **larger is better on every axis** ([`dominates_nd`]'s convention).
/// Returned indices are in input order; exact duplicates all survive.
///
/// # Panics
///
/// Panics if the points have inconsistent dimensions.
pub fn pareto_front_nd(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().enumerate().any(|(j, p)| j != i && dominates_nd(p, &points[i])))
        .collect()
}

/// The ε-grid cell of a point: each coordinate mapped to its box index
/// on an additive grid of width `eps` (larger is better, so a larger box
/// index is a better box). The comparison helpers below compare boxes,
/// which is what makes ε-dominance transitive.
fn epsilon_grid(p: &[f64], eps: f64) -> Vec<f64> {
    p.iter().map(|&x| (x / eps).floor()).collect()
}

/// The integer ε-grid cell of a point: each coordinate mapped to the
/// index of its `eps`-wide box, as an `i64`. Two points share a cell
/// exactly when every coordinate floors to the same box, which makes the
/// cell a **merge-order-invariant dedup key**: any party that computes
/// cells over the same points gets the same partition regardless of the
/// order the points arrived in. This is the key the explorer's ε-archive
/// pruning and the shard-merge path both use, so shard + merge keeps the
/// single-run partition bit-for-bit.
///
/// `eps <= 0` collapses the grid to the raw bit pattern of each
/// coordinate (every distinct value its own cell; `-0.0` and `+0.0`
/// share one).
///
/// # Panics
///
/// Panics if a cell index overflows `i64` (coordinates are normalized
/// objectives in practice, many orders of magnitude below that).
pub fn epsilon_cell(p: &[f64], eps: f64) -> Vec<i64> {
    p.iter()
        .map(|&x| {
            if eps <= 0.0 {
                let bits = if x == 0.0 { 0.0f64.to_bits() } else { x.to_bits() };
                bits as i64
            } else {
                let cell = (x / eps).floor();
                assert!(
                    cell >= i64::MIN as f64 && cell <= i64::MAX as f64,
                    "epsilon cell overflows i64"
                );
                cell as i64
            }
        })
        .collect()
}

/// Whether `a` ε-dominates `b` (strictly, larger is better on every
/// axis): `a`'s ε-grid cell Pareto-dominates `b`'s — at least as good
/// on every axis and strictly better on one, at grid resolution `eps`.
///
/// Unlike raw [`dominates_nd`], this relation is insensitive to
/// sub-`eps` noise (Monte Carlo jitter in a yield estimate cannot flip
/// it), and it stays **anti-symmetric and transitive**, because it is
/// plain Pareto dominance on the integer grid cells. `eps <= 0` falls
/// back to exact dominance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn epsilon_dominates_nd(a: &[f64], b: &[f64], eps: f64) -> bool {
    if eps <= 0.0 {
        return dominates_nd(a, b);
    }
    dominates_nd(&epsilon_grid(a, eps), &epsilon_grid(b, eps))
}

/// Whether `a` weakly ε-dominates `b`: `a`'s ε-grid cell is at least as
/// good as `b`'s on **every** axis (equal cells dominate each other both
/// ways — the relation is reflexive). This is the archive-acceptance
/// test of Laumanns-style ε-archives: a candidate weakly ε-dominated by
/// an archived point adds no new grid cell to the front. `eps <= 0`
/// degenerates to componentwise `>=`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn epsilon_weakly_dominates_nd(a: &[f64], b: &[f64], eps: f64) -> bool {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    if eps <= 0.0 {
        return a.iter().zip(b).all(|(&x, &y)| x >= y);
    }
    a.iter().zip(b).all(|(&x, &y)| (x / eps).floor() >= (y / eps).floor())
}

/// NSGA-II crowding distances of a point set (larger is better on every
/// axis, as everywhere in this module). Boundary points of each
/// discriminating objective get `f64::INFINITY`; interior points
/// accumulate the normalized gap between their neighbors along every
/// objective. An axis on which all points are equal discriminates
/// nothing and contributes nothing (no arbitrary boundary picks). The
/// result is a pure function of the input — and permutation-equivariant
/// whenever each axis has distinct values; exact ties within an axis
/// are broken by input position, as in standard NSGA-II.
///
/// An empty input returns an empty vector; a set whose every axis is
/// constant gets all-zero distances.
///
/// # Panics
///
/// Panics if the points have inconsistent dimensions.
pub fn crowding_distances(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let dims = points[0].len();
    for p in points {
        assert_eq!(p.len(), dims, "dimension mismatch");
    }
    let mut distance = vec![0.0f64; n];
    for (m, _) in points[0].iter().enumerate() {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            points[i][m].partial_cmp(&points[j][m]).expect("finite objective").then(i.cmp(&j))
        });
        let (lo, hi) = (points[order[0]][m], points[order[n - 1]][m]);
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        for w in 1..n - 1 {
            let gap = (points[order[w + 1]][m] - points[order[w - 1]][m]) / span;
            distance[order[w]] += gap;
        }
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_of_staircase() {
        // A descending staircase: every point is optimal.
        let pts = vec![(1.0, 0.9), (2.0, 0.5), (3.0, 0.1)];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn dominated_points_removed() {
        let pts = vec![(1.0, 0.9), (2.0, 0.95), (0.5, 0.5)];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    fn duplicates_both_survive() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn dominance_relation() {
        assert!(dominates((2.0, 0.5), (1.0, 0.5)));
        assert!(dominates((2.0, 0.6), (1.0, 0.5)));
        assert!(!dominates((2.0, 0.4), (1.0, 0.5)));
        assert!(!dominates((1.0, 0.5), (1.0, 0.5)));
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn nd_dominance_relation() {
        assert!(dominates_nd(&[1.0, 2.0, 3.0], &[1.0, 2.0, 2.0]));
        assert!(!dominates_nd(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]));
        assert!(!dominates_nd(&[1.0, 2.0, 3.0], &[0.0, 3.0, 3.0]));
    }

    #[test]
    fn nd_front_matches_2d_front_on_pairs() {
        let pts = [(1.0, 0.9), (2.0, 0.95), (0.5, 0.5), (3.0, 0.1)];
        let as_nd: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a, b]).collect();
        assert_eq!(pareto_front_nd(&as_nd), pareto_front(&pts));
    }

    #[test]
    fn nd_front_keeps_axis_specialists() {
        // Each point is best on one axis: all three are non-dominated.
        let pts = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
            vec![0.0, 0.0, 3.0],
            vec![0.5, 0.5, 0.5],
        ];
        assert_eq!(pareto_front_nd(&pts), vec![0, 1, 2, 3]);
        // But a point dominated on every axis falls off.
        let pts2 = vec![vec![3.0, 3.0, 3.0], vec![1.0, 2.0, 3.0]];
        assert_eq!(pareto_front_nd(&pts2), vec![0]);
    }

    #[test]
    fn nd_duplicates_both_survive() {
        let pts = vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]];
        assert_eq!(pareto_front_nd(&pts), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn nd_dimension_mismatch_panics() {
        dominates_nd(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn epsilon_dominance_ignores_sub_grid_noise() {
        // Raw dominance sees the 0.004 edge; a 0.01 grid does not.
        let a = [0.504, 1.0];
        let b = [0.500, 1.0];
        assert!(dominates_nd(&a, &b));
        assert!(!epsilon_dominates_nd(&a, &b, 0.01));
        // A full-cell edge survives the grid.
        let c = [0.52, 1.0];
        assert!(epsilon_dominates_nd(&c, &b, 0.01));
        // eps <= 0 falls back to exact dominance.
        assert!(epsilon_dominates_nd(&a, &b, 0.0));
    }

    #[test]
    fn weak_epsilon_dominance_is_reflexive_and_covers_equal_cells() {
        let a = [0.501, -3.0];
        let b = [0.509, -3.0];
        // Same cells: each weakly dominates the other, neither strictly.
        assert!(epsilon_weakly_dominates_nd(&a, &b, 0.01));
        assert!(epsilon_weakly_dominates_nd(&b, &a, 0.01));
        assert!(!epsilon_dominates_nd(&a, &b, 0.01));
        assert!(!epsilon_dominates_nd(&b, &a, 0.01));
        assert!(epsilon_weakly_dominates_nd(&a, &a, 0.01));
    }

    #[test]
    fn epsilon_dominance_handles_negative_axes() {
        // Minimized axes arrive negated; the grid floors work there too.
        let better = [0.5, -100.0];
        let worse = [0.5, -130.0];
        assert!(epsilon_dominates_nd(&better, &worse, 10.0));
        assert!(!epsilon_dominates_nd(&worse, &better, 10.0));
    }

    #[test]
    fn epsilon_cell_is_order_invariant_dedup_key() {
        // Same cell <=> weak ε-dominance both ways at the same grid.
        let a = [0.501, -3.0];
        let b = [0.509, -3.0];
        let c = [0.52, -3.0];
        assert_eq!(epsilon_cell(&a, 0.01), epsilon_cell(&b, 0.01));
        assert_ne!(epsilon_cell(&a, 0.01), epsilon_cell(&c, 0.01));
        // Cells match the f64 grid the dominance helpers floor to.
        assert_eq!(epsilon_cell(&[-100.0, 0.5], 10.0), vec![-10, 0]);
        // eps <= 0: every distinct value its own cell, zeros unified.
        assert_eq!(epsilon_cell(&[0.0], 0.0), epsilon_cell(&[-0.0], 0.0));
        assert_ne!(epsilon_cell(&[1.0], 0.0), epsilon_cell(&[1.0 + f64::EPSILON], 0.0));
    }

    #[test]
    fn crowding_boundaries_are_infinite_and_interior_ordered() {
        // Four collinear points: ends infinite, the denser interior pair
        // less crowded than ... the middle gap dominates.
        let pts = vec![vec![0.0, 0.0], vec![0.1, -0.1], vec![0.5, -0.5], vec![1.0, -1.0]];
        let d = crowding_distances(&pts);
        assert!(d[0].is_infinite() && d[3].is_infinite());
        assert!(d[1].is_finite() && d[2].is_finite());
        assert!(d[2] > d[1], "wider gaps mean less crowded: {d:?}");
    }

    #[test]
    fn crowding_is_equivariant_under_permutation() {
        let pts = vec![vec![0.0, 1.0], vec![0.3, 0.6], vec![0.7, 0.2], vec![1.0, 0.0]];
        let d = crowding_distances(&pts);
        let perm = vec![pts[2].clone(), pts[0].clone(), pts[3].clone(), pts[1].clone()];
        let dp = crowding_distances(&perm);
        assert_eq!(dp, vec![d[2], d[0], d[3], d[1]]);
    }

    #[test]
    fn crowding_degenerate_inputs() {
        assert!(crowding_distances(&[]).is_empty());
        // A single point spans nothing: no axis discriminates.
        assert_eq!(crowding_distances(&[vec![1.0, 2.0]]), vec![0.0]);
        let two = crowding_distances(&[vec![1.0], vec![2.0]]);
        assert!(two.iter().all(|d| d.is_infinite()));
        // An all-equal axis contributes nothing — no division by zero,
        // and no arbitrary input-position boundary picks.
        let flat = crowding_distances(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]);
        assert!(flat[0].is_infinite() && flat[2].is_infinite());
        assert!(flat[1].is_finite());
        let all_flat = crowding_distances(&[vec![5.0], vec![5.0], vec![5.0]]);
        assert_eq!(all_flat, vec![0.0, 0.0, 0.0]);
    }
}
