//! Pareto-front extraction for (performance, yield) points.

/// Indices of the Pareto-optimal points among `(performance, yield)`
/// pairs where **larger is better on both axes** (the paper plots
/// normalized reciprocal gate count against yield rate, Figure 10).
///
/// A point is Pareto-optimal when no other point is at least as good on
/// both axes and strictly better on one. Returned indices are in input
/// order.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let (pi, yi) = points[i];
            !points
                .iter()
                .enumerate()
                .any(|(j, &(pj, yj))| j != i && pj >= pi && yj >= yi && (pj > pi || yj > yi))
        })
        .collect()
}

/// Whether point `a` (performance, yield) dominates point `b`: at least
/// as good on both axes and strictly better on one.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 >= b.0 && a.1 >= b.1 && (a.0 > b.0 || a.1 > b.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_of_staircase() {
        // A descending staircase: every point is optimal.
        let pts = vec![(1.0, 0.9), (2.0, 0.5), (3.0, 0.1)];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn dominated_points_removed() {
        let pts = vec![(1.0, 0.9), (2.0, 0.95), (0.5, 0.5)];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    fn duplicates_both_survive() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn dominance_relation() {
        assert!(dominates((2.0, 0.5), (1.0, 0.5)));
        assert!(dominates((2.0, 0.6), (1.0, 0.5)));
        assert!(!dominates((2.0, 0.4), (1.0, 0.5)));
        assert!(!dominates((1.0, 0.5), (1.0, 0.5)));
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }
}
