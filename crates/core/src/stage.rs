//! The design flow as an explicit stage graph.
//!
//! The paper's flow is a cascade — placement, bus insertion, frequency
//! allocation, then (downstream, in other crates) yield simulation and
//! mapping — but [`crate::DesignFlow`] grew up as a monolithic builder:
//! every call recomputed every subroutine, even when only one knob
//! changed. This module makes the cascade explicit:
//!
//! - [`Stage`] — one pipeline step with a typed input, a typed output,
//!   and a **content key** derived from nothing but its true inputs, so
//!   equal keys mean equal outputs (every stage is a pure function);
//! - [`StageCache`] — a bounded, content-keyed memo table shared across
//!   threads: whichever caller computes a key first, the value is the one
//!   every other caller would have produced, so cross-thread sharing can
//!   never break determinism. `QPD_MEMO_CAP` bounds the table with a
//!   deterministic second-chance (clock) eviction, so very long runs
//!   cannot grow memory without bound;
//! - [`StageKind`] / [`StageSet`] — the stage dependency graph and its
//!   dirty-propagation rule: a knob change dirties one stage, and
//!   [`StageKind::invalidates`] names everything downstream of it.
//!   Crucially, **routing is not downstream of frequency allocation**
//!   (the router never reads frequencies), which is what lets a
//!   frequency-only change skip placement, bus insertion, *and* routing;
//! - [`StagePlan`] — the assembled plan for the in-crate half of the
//!   cascade (placement → buses → frequency/assembly), owning one cache
//!   per stage. [`crate::DesignFlow`] is a thin facade over a plan, and
//!   the design-space explorer (`qpd-explore`) extends the same graph
//!   with its yield and routing stages.
//!
//! Serving a stage from cache is bit-identical to re-running it, so the
//! stage graph changes *when* work happens, never *what* is computed —
//! the equivalence proptests in the workspace test tree pin this against
//! the retained monolithic reference path
//! ([`crate::DesignFlow::design_reference`]).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qpd_profile::CouplingProfile;
use qpd_topology::{pattern_frequency_plan, Architecture, Coord, FrequencyPlan, Square};
use qpd_yield::{AllocScratch, CompiledRegions, Fnv64, HardwareFamily};

use crate::bus::{select_buses_random, select_buses_weighted};
use crate::error::DesignError;
use crate::freq::FrequencyAllocator;
use crate::pipeline::{BusStrategy, FrequencyStrategy};
use crate::placement::{place_auxiliary, place_qubits};

/// One step of the design cascade: a pure function from a typed input to
/// a typed output, addressable by a content key.
///
/// The contract every implementation must uphold:
///
/// - [`Stage::content_key`] depends on **all** inputs that influence the
///   output (including the stage's own configuration) and on nothing
///   else — no timestamps, no thread identity, no global state;
/// - [`Stage::run`] is deterministic: equal inputs produce bit-identical
///   outputs.
///
/// Together these make [`StageCache`] transparent: a cached value is the
/// value a fresh run would produce.
pub trait Stage {
    /// The stage's input (borrowed; stages never own their upstream).
    type Input<'a>;
    /// The stage's product.
    type Output: Clone;
    /// The stage's failure mode.
    type Error;

    /// Where this stage sits in the dependency graph.
    const KIND: StageKind;

    /// The content key of `input` under this stage's configuration.
    fn content_key(&self, input: &Self::Input<'_>) -> u64;

    /// Computes the stage's output.
    ///
    /// # Errors
    ///
    /// Stage-specific; see the implementing type.
    fn run(&self, input: &Self::Input<'_>) -> Result<Self::Output, Self::Error>;
}

/// The stages of the full cascade, in pipeline order. The first three
/// run inside this crate ([`StagePlan`]); `Routing` and `Yield` are the
/// downstream stages the explorer and evaluation harness attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// Algorithm 1: qubit placement (plus auxiliary qubits).
    Placement,
    /// Algorithm 2: 4-qubit bus (square) selection.
    Bus,
    /// Algorithm 3 / 5-frequency pattern: frequency allocation and
    /// architecture assembly.
    Frequency,
    /// SABRE routing of the profiled program (reads the coupling
    /// topology only — **not** the frequencies).
    Routing,
    /// Monte Carlo yield simulation (reads topology *and* frequencies).
    Yield,
}

impl StageKind {
    /// Every stage, pipeline order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Placement,
        StageKind::Bus,
        StageKind::Frequency,
        StageKind::Routing,
        StageKind::Yield,
    ];

    /// Stable display name (reporting, summary tables).
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Placement => "placement",
            StageKind::Bus => "bus",
            StageKind::Frequency => "frequency",
            StageKind::Routing => "routing",
            StageKind::Yield => "yield",
        }
    }

    /// The set of stages invalidated when this stage's inputs change:
    /// the stage itself plus everything downstream of it in the graph.
    ///
    /// The graph is the paper's cascade with one deliberate exception:
    /// routing depends on placement and bus insertion but **not** on
    /// frequency allocation, so a frequency-only change leaves routing
    /// results valid. Yield depends on everything except routing.
    pub fn invalidates(self) -> StageSet {
        match self {
            StageKind::Placement => StageSet::all(),
            StageKind::Bus => StageSet::of(&[
                StageKind::Bus,
                StageKind::Frequency,
                StageKind::Routing,
                StageKind::Yield,
            ]),
            StageKind::Frequency => StageSet::of(&[StageKind::Frequency, StageKind::Yield]),
            StageKind::Routing => StageSet::of(&[StageKind::Routing]),
            StageKind::Yield => StageSet::of(&[StageKind::Yield]),
        }
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// A small set of [`StageKind`]s — the currency of dirty tracking: a
/// knob diff maps to the set of dirtied stages, and everything upstream
/// of the first dirty stage is served from cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSet(u8);

impl StageSet {
    /// The empty set (nothing dirty: a no-op diff).
    pub fn empty() -> Self {
        StageSet(0)
    }

    /// Every stage (a change upstream of everything).
    pub fn all() -> Self {
        StageSet::of(&StageKind::ALL)
    }

    /// The set holding exactly `kinds`.
    pub fn of(kinds: &[StageKind]) -> Self {
        StageSet(kinds.iter().fold(0, |acc, k| acc | k.bit()))
    }

    /// Whether `kind` is in the set.
    pub fn contains(self, kind: StageKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: StageSet) -> StageSet {
        StageSet(self.0 | other.0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of stages in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The stages in the set, pipeline order.
    pub fn iter(self) -> impl Iterator<Item = StageKind> {
        StageKind::ALL.into_iter().filter(move |k| self.contains(*k))
    }
}

impl std::fmt::Display for StageSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.iter().map(StageKind::name).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

/// The environment variable bounding every [`StageCache`]: unset, empty,
/// or `0` means unbounded; any positive integer caps the number of
/// entries per cache, evicted second-chance.
pub const MEMO_CAP_ENV: &str = "QPD_MEMO_CAP";

fn env_cap() -> Option<usize> {
    std::env::var(MEMO_CAP_ENV).ok().and_then(|v| v.parse::<usize>().ok()).filter(|&cap| cap > 0)
}

#[derive(Debug)]
struct CacheEntry<V> {
    value: V,
    /// Second-chance bit: set on every hit, cleared (once) by the clock
    /// hand before the entry becomes an eviction candidate again.
    referenced: bool,
}

#[derive(Debug, Default)]
struct CacheInner<V> {
    table: HashMap<u64, CacheEntry<V>>,
    /// Clock ring: every cached key exactly once, insertion order, with
    /// spared keys rotated to the back.
    ring: VecDeque<u64>,
    /// Every key ever inserted, surviving both eviction and
    /// [`StageCache::clear`]: the basis of the deterministic
    /// unique-miss counter (distinct work items computed, independent
    /// of thread scheduling and duplicate-compute races).
    seen: HashSet<u64>,
}

/// A bounded, shared, content-keyed memo table — the per-stage cache of
/// the stage graph.
///
/// Values must be pure functions of their key; that is what makes
/// cross-thread sharing deterministic (two threads may race to compute
/// the same key, but both produce the identical value) and what makes
/// eviction harmless (an evicted entry is recomputed, never changed).
///
/// # Bounding
///
/// [`StageCache::new`] reads [`MEMO_CAP_ENV`] (`QPD_MEMO_CAP`) once at
/// construction; [`StageCache::with_cap`] overrides it. When the table
/// is full, insertion runs the **second-chance (clock) rule**: keys are
/// visited in insertion order, a key that was hit since its last visit
/// is spared (its reference bit cleared, the key rotated to the back),
/// and the first unreferenced key is evicted. The rule depends only on
/// the sequence of inserts and hits, never on hash iteration order, so
/// eviction is deterministic for a deterministic call sequence — and
/// because values are pure, even a thread-racy call sequence can only
/// change *when* a value is recomputed, never what it is.
#[derive(Debug)]
pub struct StageCache<V: Clone> {
    inner: Mutex<CacheInner<V>>,
    cap: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> Default for StageCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> StageCache<V> {
    /// An empty cache, bounded by `QPD_MEMO_CAP` when that is set.
    pub fn new() -> Self {
        Self::with_cap(env_cap())
    }

    /// An empty cache with an explicit bound (`None` = unbounded).
    pub fn with_cap(cap: Option<usize>) -> Self {
        StageCache {
            inner: Mutex::new(CacheInner {
                table: HashMap::new(),
                ring: VecDeque::new(),
                seen: HashSet::new(),
            }),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured entry bound (`None` = unbounded).
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// The cached value for `key`, counting a hit (and marking the entry
    /// recently used) when present.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut inner = self.inner.lock().expect("stage cache poisoned");
        let found = inner.table.get_mut(&key).map(|e| {
            e.referenced = true;
            e.value.clone()
        });
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a freshly computed value, counting a miss and evicting
    /// second-chance if the cache is at its bound. The first value wins
    /// when two computations race on one key (both are identical by the
    /// purity contract).
    pub fn insert(&self, key: u64, value: V) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.inner.lock().expect("stage cache poisoned");
        let inner = &mut *guard;
        inner.seen.insert(key);
        if inner.table.contains_key(&key) {
            return;
        }
        if let Some(cap) = self.cap {
            while inner.table.len() >= cap.max(1) {
                let victim = inner.ring.pop_front().expect("ring tracks every entry");
                let entry = inner.table.get_mut(&victim).expect("ring key in table");
                if entry.referenced {
                    // Spared once: clear the bit, rotate to the back.
                    entry.referenced = false;
                    inner.ring.push_back(victim);
                } else {
                    inner.table.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        inner.ring.push_back(key);
        inner.table.insert(key, CacheEntry { value, referenced: false });
    }

    /// The value for `key`, computing and inserting it on first demand.
    /// `compute` runs outside the lock: stage bodies are expensive and
    /// may fan out onto the shared worker pool.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Runs `stage` on `input` through this cache: a content-key lookup,
    /// then (on miss) the stage body. Returns the key alongside the
    /// output so callers can chain it into downstream keys.
    ///
    /// # Errors
    ///
    /// Propagates the stage's error; failures are never cached.
    pub fn run_stage<S>(&self, stage: &S, input: &S::Input<'_>) -> Result<(u64, V), S::Error>
    where
        S: Stage<Output = V>,
    {
        let key = stage.content_key(input);
        if let Some(v) = self.get(key) {
            return Ok((key, v));
        }
        let v = stage.run(input)?;
        self.insert(key, v.clone());
        Ok((key, v))
    }

    /// Number of lookups served from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute.
    ///
    /// Scheduling-dependent: two threads racing on one key can both
    /// miss (each computes, each inserts, first wins), so this counter
    /// may differ run-to-run under a parallel workload. For a
    /// thread-stable figure use [`StageCache::unique_misses`].
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of **distinct** keys ever inserted — the deterministic
    /// companion to [`StageCache::misses`].
    ///
    /// A fixed workload demands a fixed set of content keys, so this
    /// count is identical at every `QPD_THREADS`: a duplicate-compute
    /// race inflates `misses` but inserts the same key twice, and the
    /// set deduplicates it. The set survives eviction and
    /// [`StageCache::clear`], mirroring how the other counters
    /// accumulate for the cache's lifetime.
    pub fn unique_misses(&self) -> u64 {
        self.inner.lock().expect("stage cache poisoned").seen.len() as u64
    }

    /// Number of entries evicted by the second-chance rule.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("stage cache poisoned").table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored value; the counters keep accumulating.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("stage cache poisoned");
        inner.table.clear();
        inner.ring.clear();
    }

    /// Snapshot of every `(key, value)` pair, sorted by key — a
    /// deterministic serialization order for cache persistence (the
    /// explorer's warm-start sidecars). Reading a snapshot does not
    /// touch the hit/miss counters or the reference bits.
    pub fn entries(&self) -> Vec<(u64, V)> {
        let inner = self.inner.lock().expect("stage cache poisoned");
        let mut out: Vec<(u64, V)> =
            inner.table.iter().map(|(&k, e)| (k, e.value.clone())).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

/// Hit/miss/size counters of one stage's cache, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCacheStats {
    /// Which stage the counters describe.
    pub kind: StageKind,
    /// Lookups served from the table.
    pub hits: u64,
    /// Lookups that computed (scheduling-dependent under parallelism;
    /// see [`StageCache::misses`]).
    pub misses: u64,
    /// Distinct keys ever inserted (thread-stable; see
    /// [`StageCache::unique_misses`]).
    pub unique_misses: u64,
    /// Entries evicted by the second-chance rule.
    pub evictions: u64,
    /// Entries currently stored.
    pub len: usize,
}

impl StageCacheStats {
    /// Reads the counters of `cache` on behalf of `kind`.
    pub fn of<V: Clone>(kind: StageKind, cache: &StageCache<V>) -> Self {
        StageCacheStats {
            kind,
            hits: cache.hits(),
            misses: cache.misses(),
            unique_misses: cache.unique_misses(),
            evictions: cache.evictions(),
            len: cache.len(),
        }
    }

    /// Fraction of lookups served from cache (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Folds a byte slice into an [`Fnv64`] word stream.
fn push_bytes(h: &mut Fnv64, bytes: &[u8]) {
    h.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h.push(u64::from_le_bytes(word));
    }
}

fn push_coord(h: &mut Fnv64, c: Coord) {
    h.push(((c.row as u32 as u64) << 32) | c.col as u32 as u64);
}

fn push_coords(h: &mut Fnv64, coords: &[Coord]) {
    h.push(coords.len() as u64);
    for &c in coords {
        push_coord(h, c);
    }
}

fn push_squares(h: &mut Fnv64, squares: &[Square]) {
    h.push(squares.len() as u64);
    for s in squares {
        push_coord(h, s.origin);
    }
}

/// The content key of a coupling profile: qubit count plus every
/// weighted edge, in the profile's canonical ascending order.
pub fn profile_key(profile: &CouplingProfile) -> u64 {
    let mut h = Fnv64::new();
    h.push(profile.num_qubits() as u64);
    for e in profile.edges() {
        h.push(((e.a.index() as u64) << 32) | e.b.index() as u64);
        h.push(e.weight as u64);
    }
    h.finish()
}

/// Stage 1 — qubit placement (Algorithm 1) plus auxiliary qubits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementStage {
    /// Auxiliary physical qubits appended around the placed layout.
    pub auxiliary_qubits: usize,
}

impl Stage for PlacementStage {
    type Input<'a> = &'a CouplingProfile;
    type Output = Vec<Coord>;
    type Error = DesignError;
    const KIND: StageKind = StageKind::Placement;

    fn content_key(&self, input: &Self::Input<'_>) -> u64 {
        let mut h = Fnv64::new();
        h.push(Self::KIND as u64);
        h.push(profile_key(input));
        h.push(self.auxiliary_qubits as u64);
        h.finish()
    }

    fn run(&self, input: &Self::Input<'_>) -> Result<Vec<Coord>, DesignError> {
        if input.num_qubits() == 0 {
            return Err(DesignError::EmptyProgram);
        }
        let mut coords = place_qubits(input);
        if self.auxiliary_qubits > 0 {
            coords.extend(place_auxiliary(&coords, self.auxiliary_qubits));
        }
        Ok(coords)
    }
}

/// Stage 2 — 4-qubit bus selection (Algorithm 2 or the seeded random
/// ablation), producing the square order whose prefixes are the
/// selections for smaller budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusOrderStage {
    /// Selection strategy (weighted Algorithm 2 or seeded random).
    pub strategy: BusStrategy,
    /// Bus budget cap (`None` = as many as beneficial).
    pub max_buses: Option<usize>,
}

impl Stage for BusOrderStage {
    type Input<'a> = (&'a [Coord], &'a CouplingProfile);
    type Output = Vec<Square>;
    type Error = DesignError;
    const KIND: StageKind = StageKind::Bus;

    fn content_key(&self, input: &Self::Input<'_>) -> u64 {
        let (coords, profile) = input;
        let mut h = Fnv64::new();
        h.push(Self::KIND as u64);
        push_coords(&mut h, coords);
        h.push(profile_key(profile));
        match self.strategy {
            BusStrategy::Weighted => h.push(0),
            BusStrategy::Random { seed } => {
                h.push(1);
                h.push(seed);
            }
        }
        h.push(self.max_buses.map_or(u64::MAX, |cap| cap as u64));
        h.finish()
    }

    fn run(&self, input: &Self::Input<'_>) -> Result<Vec<Square>, DesignError> {
        let (coords, profile) = input;
        let cap = self.max_buses.unwrap_or(usize::MAX);
        Ok(match self.strategy {
            BusStrategy::Weighted => select_buses_weighted(coords, profile, cap),
            BusStrategy::Random { seed } => select_buses_random(coords, cap, seed),
        })
    }
}

/// Stage 3 — frequency allocation and architecture assembly: builds the
/// chip from an explicit layout and attaches a frequency plan (Algorithm
/// 3's center-out search or the IBM 5-frequency pattern).
#[derive(Debug, Clone, PartialEq)]
pub struct AssembleStage {
    /// Frequency strategy.
    pub frequency: FrequencyStrategy,
    /// Monte Carlo trials inside Algorithm 3.
    pub allocation_trials: usize,
    /// Refinement sweep budget of Algorithm 3 (0 = single pass).
    pub allocation_sweeps: usize,
    /// Seed of Algorithm 3's local simulations.
    pub allocation_seed: u64,
    /// Fabrication precision assumed during allocation, GHz.
    pub sigma_ghz: f64,
    /// Prefix for generated architecture names.
    pub name_prefix: String,
    /// Hardware family: supplies the frequency band, pattern menu, and
    /// collision parameters. The default family reproduces the
    /// pre-hardware-layer stage bit for bit, content key included.
    pub hardware: HardwareFamily,
}

impl Stage for AssembleStage {
    type Input<'a> = (&'a [Coord], &'a [Square]);
    type Output = Architecture;
    type Error = DesignError;
    const KIND: StageKind = StageKind::Frequency;

    fn content_key(&self, input: &Self::Input<'_>) -> u64 {
        let (coords, squares) = input;
        let mut h = Fnv64::new();
        h.push(Self::KIND as u64);
        push_coords(&mut h, coords);
        push_squares(&mut h, squares);
        h.push(match self.frequency {
            FrequencyStrategy::Optimized => 0,
            FrequencyStrategy::FiveFrequency => 1,
        });
        h.push(self.allocation_trials as u64);
        h.push(self.allocation_sweeps as u64);
        h.push(self.allocation_seed);
        h.push(self.sigma_ghz.to_bits());
        push_bytes(&mut h, self.name_prefix.as_bytes());
        // Appended last, and only for non-default families, so every key
        // minted before the hardware layer existed is reproduced exactly.
        self.hardware.push_key_tag(&mut h);
        h.finish()
    }

    fn run(&self, input: &Self::Input<'_>) -> Result<Architecture, DesignError> {
        let (coords, squares) = input;
        self.run_with(coords, squares, &mut AssembleScratch::default())
    }
}

impl AssembleStage {
    /// Builds the bare (frequency-less) architecture this stage
    /// assembles from the layout.
    fn build_architecture(
        &self,
        coords: &[Coord],
        squares: &[Square],
    ) -> Result<Architecture, DesignError> {
        let name = format!(
            "{}{}-{}q-b{}{}",
            self.name_prefix,
            self.hardware.name_suffix(),
            coords.len(),
            squares.len(),
            match self.frequency {
                FrequencyStrategy::Optimized => "",
                FrequencyStrategy::FiveFrequency => "-5freq",
            }
        );
        let mut builder = Architecture::builder(name);
        builder.qubits(coords.iter().copied());
        for &s in squares {
            builder.four_qubit_bus_at(s);
        }
        Ok(builder.build()?)
    }

    /// The frequency allocator this stage configures for
    /// [`FrequencyStrategy::Optimized`].
    fn allocator(&self) -> FrequencyAllocator {
        FrequencyAllocator::new()
            .with_hardware(self.hardware)
            .with_trials(self.allocation_trials)
            .with_refinement_sweeps(self.allocation_sweeps)
            .with_sigma_ghz(self.sigma_ghz)
            .with_seed(self.allocation_seed)
    }

    /// [`Stage::run`] against a caller-held [`AssembleScratch`]: the
    /// compiled local regions come from the scratch's topology-keyed
    /// cache and the allocation reuses its noise planes. The output is
    /// bit-identical to a scratch-free run.
    fn run_with(
        &self,
        coords: &[Coord],
        squares: &[Square],
        scratch: &mut AssembleScratch,
    ) -> Result<Architecture, DesignError> {
        let model = self.hardware.model();
        let arch = self.build_architecture(coords, squares)?;
        let plan: FrequencyPlan = match self.frequency {
            FrequencyStrategy::FiveFrequency => {
                pattern_frequency_plan(&arch, model.pattern_frequencies_ghz())
            }
            FrequencyStrategy::Optimized => {
                let regions = scratch.regions_for(coords, squares, &arch);
                self.allocator().allocate_with(&arch, &regions, &mut scratch.alloc)
            }
        };
        Ok(arch.with_frequencies_in_band(plan, model.allowed_band_ghz())?)
    }
}

/// Reusable state shared across assemble-stage runs: compiled local
/// regions keyed by topology, plus the frequency allocator's
/// [`AllocScratch`] (noise planes and decision buffers).
///
/// Everything in here is *derived pure data* — regenerating it yields
/// bit-identical values — so sharing it across runs, configurations, or
/// cache clears never changes an output, only when work happens.
#[derive(Debug, Default)]
struct AssembleScratch {
    /// Compiled local regions keyed by the layout's topology hash
    /// (coords + squares — the region tables do not depend on any stage
    /// knob), so a stage-cache miss on a revisited topology skips the
    /// rebuild.
    regions: HashMap<u64, Arc<CompiledRegions>>,
    /// Noise planes and per-decision buffers for the allocator.
    alloc: AllocScratch,
}

impl AssembleScratch {
    /// Retained topologies before the region cache resets.
    const REGION_CACHE_CAP: usize = 128;

    /// The compiled regions of `arch`, from cache when the topology was
    /// seen before.
    fn regions_for(
        &mut self,
        coords: &[Coord],
        squares: &[Square],
        arch: &Architecture,
    ) -> Arc<CompiledRegions> {
        let mut h = Fnv64::new();
        push_coords(&mut h, coords);
        push_squares(&mut h, squares);
        let key = h.finish();
        if self.regions.len() >= Self::REGION_CACHE_CAP && !self.regions.contains_key(&key) {
            self.regions.clear();
        }
        Arc::clone(self.regions.entry(key).or_insert_with(|| Arc::new(CompiledRegions::new(arch))))
    }
}

/// One frequency/assembly request of a batched submission
/// ([`StagePlan::assemble_batch`]): a stage configuration plus the
/// layout it assembles. Jobs in one batch may differ in any knob —
/// frequency strategy, hardware family, layout — and still share the
/// scratch.
#[derive(Debug, Clone, Copy)]
pub struct AssembleJob<'a> {
    /// Stage configuration for this job.
    pub stage: &'a AssembleStage,
    /// Qubit layout.
    pub coords: &'a [Coord],
    /// Four-qubit bus squares.
    pub squares: &'a [Square],
}

/// The assembled in-crate stage graph: one content-keyed cache per
/// stage of the placement → bus → frequency cascade.
///
/// A plan is shared (it lives behind an `Arc` inside every
/// [`crate::DesignFlow`] and its clones): the caches use interior
/// mutability and are safe to consult from the worker pool. Because
/// stage keys embed the stage configuration, one plan can serve flows
/// with different knobs without cross-talk.
#[derive(Debug, Default)]
pub struct StagePlan {
    placement: StageCache<Vec<Coord>>,
    bus: StageCache<Vec<Square>>,
    assemble: StageCache<Architecture>,
    /// Shared assemble scratch (compiled regions + noise planes),
    /// parked here between runs. Takers swap it out so concurrent
    /// assembles never serialize on it: a racing taker finds the slot
    /// empty, runs with a fresh scratch (identical results by
    /// construction), and the last finisher parks its scratch back.
    assemble_scratch: Mutex<Option<AssembleScratch>>,
}

impl StagePlan {
    /// An empty plan (caches bounded by `QPD_MEMO_CAP` when set).
    pub fn new() -> Self {
        StagePlan::default()
    }

    /// An empty plan with an explicit per-cache bound.
    pub fn with_cap(cap: Option<usize>) -> Self {
        StagePlan {
            placement: StageCache::with_cap(cap),
            bus: StageCache::with_cap(cap),
            assemble: StageCache::with_cap(cap),
            assemble_scratch: Mutex::new(None),
        }
    }

    /// Runs the placement stage through its cache.
    ///
    /// # Errors
    ///
    /// [`DesignError::EmptyProgram`] for a 0-qubit profile.
    pub fn place(
        &self,
        stage: &PlacementStage,
        profile: &CouplingProfile,
    ) -> Result<Vec<Coord>, DesignError> {
        self.placement.run_stage(stage, &profile).map(|(_, v)| v)
    }

    /// Runs the bus-selection stage through its cache.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; typed for uniformity.
    pub fn bus_order(
        &self,
        stage: &BusOrderStage,
        coords: &[Coord],
        profile: &CouplingProfile,
    ) -> Result<Vec<Square>, DesignError> {
        self.bus.run_stage(stage, &(coords, profile)).map(|(_, v)| v)
    }

    /// Runs the frequency/assembly stage through its cache.
    ///
    /// # Errors
    ///
    /// Propagates architecture-builder errors (invalid squares).
    pub fn assemble(
        &self,
        stage: &AssembleStage,
        coords: &[Coord],
        squares: &[Square],
    ) -> Result<Architecture, DesignError> {
        let mut out = self.assemble_batch(&[AssembleJob { stage, coords, squares }])?;
        Ok(out.pop().expect("one job in, one architecture out"))
    }

    /// Runs a whole batch of frequency/assembly jobs through the cache,
    /// sharing one [`AllocScratch`] — compiled regions, noise planes,
    /// decision buffers — across every cache miss in the batch.
    ///
    /// Cache accounting matches the per-job path: every job counts one
    /// hit or one miss, and `unique_misses` grows once per distinct
    /// key. Each returned architecture is bit-identical to
    /// [`StagePlan::assemble`] on that job alone; only *when* shared
    /// work happens changes.
    ///
    /// # Errors
    ///
    /// Propagates the first failing job's error (later jobs are not
    /// run; nothing is cached for a failed job).
    pub fn assemble_batch(
        &self,
        jobs: &[AssembleJob<'_>],
    ) -> Result<Vec<Architecture>, DesignError> {
        // Pass 1 — probe the cache in submission order (hit accounting
        // identical to per-job calls).
        let keys: Vec<u64> =
            jobs.iter().map(|j| j.stage.content_key(&(j.coords, j.squares))).collect();
        let mut out: Vec<Option<Architecture>> =
            keys.iter().map(|&k| self.assemble.get(k)).collect();

        if out.iter().any(Option::is_none) {
            // Pass 2 — run each distinct missed key once, in first-
            // occurrence order, against the shared scratch. The scratch
            // is swapped out of its slot (not locked across the runs) so
            // concurrent batches never serialize; see the field docs.
            let mut scratch = self
                .assemble_scratch
                .lock()
                .expect("assemble scratch poisoned")
                .take()
                .unwrap_or_default();
            let mut computed: HashMap<u64, Architecture> = HashMap::new();
            for ((slot, &key), job) in out.iter().zip(&keys).zip(jobs) {
                if slot.is_some() || computed.contains_key(&key) {
                    continue;
                }
                let arch = job.stage.run_with(job.coords, job.squares, &mut scratch);
                let arch = match arch {
                    Ok(arch) => arch,
                    Err(e) => {
                        // Park the scratch before propagating: the work
                        // done so far stays reusable.
                        *self.assemble_scratch.lock().expect("assemble scratch poisoned") =
                            Some(scratch);
                        return Err(e);
                    }
                };
                computed.insert(key, arch);
            }
            *self.assemble_scratch.lock().expect("assemble scratch poisoned") = Some(scratch);

            // Pass 3 — fill and cache every missed occurrence (each one
            // counts a miss, exactly as sequential per-job calls that
            // raced would).
            for (slot, &key) in out.iter_mut().zip(&keys) {
                if slot.is_none() {
                    let arch = computed.get(&key).expect("computed every missed key").clone();
                    self.assemble.insert(key, arch.clone());
                    *slot = Some(arch);
                }
            }
        }
        Ok(out.into_iter().map(|a| a.expect("every job resolved")).collect())
    }

    /// The placement-stage cache.
    pub fn placement_cache(&self) -> &StageCache<Vec<Coord>> {
        &self.placement
    }

    /// The bus-stage cache.
    pub fn bus_cache(&self) -> &StageCache<Vec<Square>> {
        &self.bus
    }

    /// The frequency/assembly-stage cache.
    pub fn assemble_cache(&self) -> &StageCache<Architecture> {
        &self.assemble
    }

    /// Hit/miss counters of the three in-crate stages, pipeline order.
    pub fn stats(&self) -> Vec<StageCacheStats> {
        vec![
            StageCacheStats::of(StageKind::Placement, &self.placement),
            StageCacheStats::of(StageKind::Bus, &self.bus),
            StageCacheStats::of(StageKind::Frequency, &self.assemble),
        ]
    }

    /// Drops every cached value (counters keep accumulating).
    ///
    /// The assemble scratch — compiled regions and noise planes — is
    /// *kept*: it holds derived pure data a fresh process would
    /// regenerate bit-identically, not memoized stage results, so
    /// clearing caches changes when allocation work happens but never
    /// what is computed.
    pub fn clear(&self) {
        self.placement.clear();
        self.bus.clear();
        self.assemble.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CouplingProfile {
        CouplingProfile::from_edges(
            6,
            &[
                (0, 1, 8),
                (1, 2, 8),
                (3, 4, 8),
                (4, 5, 8),
                (0, 3, 8),
                (1, 4, 8),
                (2, 5, 8),
                (0, 4, 6),
                (1, 3, 6),
            ],
        )
    }

    #[test]
    fn cache_computes_once_per_key() {
        let cache: StageCache<u64> = StageCache::with_cap(None);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(42, || {
                calls += 1;
                7
            });
            assert_eq!(v, 7);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cap_bounds_the_table_fifo_when_nothing_is_referenced() {
        let cache: StageCache<u64> = StageCache::with_cap(Some(3));
        for k in 0..5u64 {
            cache.insert(k, k * 10);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 2);
        // Oldest unreferenced keys (0, 1) were evicted.
        assert_eq!(cache.get(0), None);
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.get(2), Some(20));
        assert_eq!(cache.get(3), Some(30));
        assert_eq!(cache.get(4), Some(40));
    }

    #[test]
    fn second_chance_spares_recently_hit_entries() {
        let cache: StageCache<u64> = StageCache::with_cap(Some(3));
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(3, 30);
        // Hit key 1: it gets a second chance over the FIFO order.
        assert_eq!(cache.get(1), Some(10));
        cache.insert(4, 40);
        // Key 2 (oldest unreferenced) was evicted; key 1 survives.
        assert_eq!(cache.len(), 3);
        assert!(cache.get(1).is_some(), "referenced entry evicted");
        assert!(cache.get(2).is_none(), "unreferenced entry survived");
        assert!(cache.get(3).is_some());
        assert!(cache.get(4).is_some());
    }

    #[test]
    fn second_chance_terminates_when_everything_is_referenced() {
        let cache: StageCache<u64> = StageCache::with_cap(Some(2));
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_some());
        // Both referenced: the clock clears both bits, then evicts the
        // oldest (key 1).
        cache.insert(3, 30);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn eviction_only_recomputes_never_changes() {
        // The purity contract in action: an evicted key recomputes to
        // the same value.
        let cache: StageCache<u64> = StageCache::with_cap(Some(1));
        let f = |k: u64| k * k;
        assert_eq!(cache.get_or_insert_with(3, || f(3)), 9);
        assert_eq!(cache.get_or_insert_with(4, || f(4)), 16); // evicts 3
        assert_eq!(cache.get_or_insert_with(3, || f(3)), 9); // recomputed
    }

    #[test]
    fn unique_misses_deduplicate_racy_inserts() {
        let cache: StageCache<u64> = StageCache::with_cap(Some(1));
        // A duplicate-compute race is two inserts of the same key: the
        // raw miss counter sees both, the unique counter sees one.
        cache.insert(1, 10);
        cache.insert(1, 10);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.unique_misses(), 1);
        // Eviction then re-insertion of a key does not re-count it.
        cache.insert(2, 20); // evicts 1 (cap = 1)
        cache.insert(1, 10);
        assert_eq!(cache.unique_misses(), 2);
        // clear() drops values but the seen-set keeps accumulating,
        // like every other counter.
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.unique_misses(), 2);
        cache.insert(3, 30);
        assert_eq!(cache.unique_misses(), 3);
        let stats = StageCacheStats::of(StageKind::Yield, &cache);
        assert_eq!(stats.unique_misses, 3);
    }

    #[test]
    fn clear_drops_values_not_counters() {
        let cache: StageCache<u64> = StageCache::with_cap(None);
        cache.insert(1, 10);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1, "counters survive a clear");
        assert_eq!(cache.get(1), None);
    }

    #[test]
    fn stage_set_algebra() {
        assert!(StageSet::empty().is_empty());
        assert_eq!(StageSet::all().len(), 5);
        let s = StageSet::of(&[StageKind::Frequency, StageKind::Yield]);
        assert!(s.contains(StageKind::Frequency));
        assert!(!s.contains(StageKind::Routing));
        assert_eq!(s.union(StageSet::of(&[StageKind::Bus])).len(), 3);
        assert_eq!(s.to_string(), "{frequency, yield}");
    }

    #[test]
    fn frequency_does_not_invalidate_routing() {
        // The load-bearing edge of the graph: a frequency-only change
        // leaves placement, bus insertion, and routing valid.
        let dirty = StageKind::Frequency.invalidates();
        assert!(dirty.contains(StageKind::Frequency));
        assert!(dirty.contains(StageKind::Yield));
        assert!(!dirty.contains(StageKind::Placement));
        assert!(!dirty.contains(StageKind::Bus));
        assert!(!dirty.contains(StageKind::Routing));
        // Upstream changes invalidate everything downstream.
        assert_eq!(StageKind::Placement.invalidates(), StageSet::all());
        assert!(StageKind::Bus.invalidates().contains(StageKind::Routing));
    }

    #[test]
    fn placement_stage_is_keyed_by_profile_and_aux() {
        let p = profile();
        let s0 = PlacementStage { auxiliary_qubits: 0 };
        let s2 = PlacementStage { auxiliary_qubits: 2 };
        assert_eq!(s0.content_key(&&p), s0.content_key(&&p), "key unstable");
        assert_ne!(s0.content_key(&&p), s2.content_key(&&p), "aux not in key");
        let other = CouplingProfile::from_edges(6, &[(0, 1, 1)]);
        assert_ne!(s0.content_key(&&p), s0.content_key(&&other), "profile not in key");
        let coords = s0.run(&&p).unwrap();
        assert_eq!(coords.len(), 6);
        assert_eq!(s2.run(&&p).unwrap().len(), 8);
    }

    #[test]
    fn empty_profile_fails_placement() {
        let empty = CouplingProfile::from_edges(0, &[]);
        let stage = PlacementStage { auxiliary_qubits: 0 };
        assert_eq!(stage.run(&&empty).unwrap_err(), DesignError::EmptyProgram);
    }

    #[test]
    fn bus_stage_key_distinguishes_strategy_and_cap() {
        let p = profile();
        let coords = PlacementStage { auxiliary_qubits: 0 }.run(&&p).unwrap();
        let input = (coords.as_slice(), &p);
        let weighted = BusOrderStage { strategy: BusStrategy::Weighted, max_buses: None };
        let random = BusOrderStage { strategy: BusStrategy::Random { seed: 1 }, max_buses: None };
        let capped = BusOrderStage { strategy: BusStrategy::Weighted, max_buses: Some(1) };
        assert_ne!(weighted.content_key(&input), random.content_key(&input));
        assert_ne!(weighted.content_key(&input), capped.content_key(&input));
        let order = weighted.run(&input).unwrap();
        assert!(capped.run(&input).unwrap().len() <= 1.min(order.len()));
    }

    #[test]
    fn assemble_stage_reproduces_the_flow_naming() {
        let p = profile();
        let coords = PlacementStage { auxiliary_qubits: 0 }.run(&&p).unwrap();
        let stage = AssembleStage {
            frequency: FrequencyStrategy::FiveFrequency,
            allocation_trials: 100,
            allocation_sweeps: 8,
            allocation_seed: 0,
            sigma_ghz: qpd_yield::FabricationModel::PAPER_SIGMA_GHZ,
            name_prefix: "demo".into(),
            hardware: HardwareFamily::FixedFrequencyTransmon,
        };
        let arch = stage.run(&(coords.as_slice(), &[][..])).unwrap();
        assert_eq!(arch.name(), "demo-6q-b0-5freq");
        assert!(arch.frequencies().is_some());
        // The key separates frequency strategies and knobs.
        let input = (coords.as_slice(), &[][..]);
        let optimized = AssembleStage { frequency: FrequencyStrategy::Optimized, ..stage.clone() };
        assert_ne!(stage.content_key(&input), optimized.content_key(&input));
        let reseeded = AssembleStage { allocation_seed: 9, ..stage.clone() };
        assert_ne!(stage.content_key(&input), reseeded.content_key(&input));
    }

    #[test]
    fn assemble_stage_threads_the_hardware_family() {
        let p = profile();
        let coords = PlacementStage { auxiliary_qubits: 0 }.run(&&p).unwrap();
        let input = (coords.as_slice(), &[][..]);
        let base = AssembleStage {
            frequency: FrequencyStrategy::FiveFrequency,
            allocation_trials: 100,
            allocation_sweeps: 8,
            allocation_seed: 0,
            sigma_ghz: qpd_yield::FabricationModel::PAPER_SIGMA_GHZ,
            name_prefix: "demo".into(),
            hardware: HardwareFamily::FixedFrequencyTransmon,
        };
        let tc = AssembleStage { hardware: HardwareFamily::TunableCoupler, ..base.clone() };
        let hh = AssembleStage { hardware: HardwareFamily::HeavyHex, ..base.clone() };
        // Families key apart so one shared cache never mixes them.
        assert_ne!(base.content_key(&input), tc.content_key(&input));
        assert_ne!(base.content_key(&input), hh.content_key(&input));
        assert_ne!(tc.content_key(&input), hh.content_key(&input));
        // Names carry the family suffix; plans land in the family band.
        let arch = tc.run(&input).unwrap();
        assert_eq!(arch.name(), "demo-tc-6q-b0-5freq");
        let plan = arch.frequencies().unwrap();
        assert!(plan.check_band_within(qpd_topology::TUNABLE_COUPLER_BAND_GHZ).is_ok());
        let arch = hh.run(&input).unwrap();
        assert_eq!(arch.name(), "demo-hh-6q-b0-5freq");
        let plan = arch.frequencies().unwrap();
        assert!(plan.check_band_within(qpd_topology::HEAVY_HEX_BAND_GHZ).is_ok());
    }

    #[test]
    fn entries_snapshot_is_sorted_and_counter_silent() {
        let cache: StageCache<u64> = StageCache::with_cap(None);
        cache.insert(9, 90);
        cache.insert(1, 10);
        cache.insert(5, 50);
        let (hits, misses) = (cache.hits(), cache.misses());
        assert_eq!(cache.entries(), vec![(1, 10), (5, 50), (9, 90)]);
        assert_eq!((cache.hits(), cache.misses()), (hits, misses), "snapshot counted");
    }

    #[test]
    fn plan_serves_repeated_stages_from_cache() {
        let p = profile();
        let plan = StagePlan::new();
        let place = PlacementStage { auxiliary_qubits: 0 };
        let a = plan.place(&place, &p).unwrap();
        let b = plan.place(&place, &p).unwrap();
        assert_eq!(a, b);
        let stats = plan.stats();
        assert_eq!(stats[0].kind, StageKind::Placement);
        assert_eq!(stats[0].hits, 1);
        assert_eq!(stats[0].misses, 1);
        assert!((stats[0].hit_rate() - 0.5).abs() < 1e-12);
        plan.clear();
        assert!(plan.placement_cache().is_empty());
    }
}
