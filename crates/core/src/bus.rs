//! Bus selection: where to spend 4-qubit buses (paper Algorithm 2).

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qpd_profile::CouplingProfile;
use qpd_topology::{Coord, Square};

/// The candidate squares of a placed layout: unit squares with at least
/// three occupied corners (a 4-qubit bus degenerates to a 3-qubit bus on
/// such corners, paper Figure 7 (b)), ascending by origin.
pub fn candidate_squares(coords: &[Coord]) -> Vec<Square> {
    let occupied: BTreeMap<Coord, usize> =
        coords.iter().enumerate().map(|(q, &c)| (c, q)).collect();
    let mut seen = std::collections::BTreeSet::new();
    for &c in occupied.keys() {
        for dr in -1..=0 {
            for dc in -1..=0 {
                let s = Square::new(c.row + dr, c.col + dc);
                if s.corners().iter().filter(|k| occupied.contains_key(k)).count() >= 3 {
                    seen.insert(s);
                }
            }
        }
    }
    seen.into_iter().collect()
}

/// The cross-coupling weight of a square: the summed logical coupling
/// strength of its occupied diagonal pairs — the benefit a 4-qubit bus
/// would add over the 2-qubit buses already on the square's sides.
///
/// Physical qubits beyond the profile's range (auxiliary qubits added by
/// `DesignFlow::with_auxiliary_qubits`) carry no program coupling and
/// contribute zero weight.
pub fn cross_coupling_weight(square: Square, coords: &[Coord], profile: &CouplingProfile) -> u64 {
    let qubit_at = |c: Coord| coords.iter().position(|&k| k == c);
    let strength = |qa: usize, qb: usize| -> u64 {
        if qa < profile.num_qubits() && qb < profile.num_qubits() {
            profile.strength(qa, qb) as u64
        } else {
            0
        }
    };
    square
        .diagonals()
        .iter()
        .filter_map(|&(a, b)| match (qubit_at(a), qubit_at(b)) {
            (Some(qa), Some(qb)) => Some(strength(qa, qb)),
            _ => None,
        })
        .sum()
}

/// Weighted 4-qubit bus selection (Algorithm 2).
///
/// Greedy loop: each iteration computes, for every available square, the
/// *filtered weight* — its cross-coupling weight minus the weights of its
/// four edge-adjacent squares (a selected square blocks those neighbors,
/// so their forgone benefit discounts the candidate) — and selects the
/// square with the highest filtered weight. The selected square's
/// neighbors are blocked and zero-weighted. Stops after `max_buses`
/// selections or when no square with positive cross-coupling weight
/// remains (a bus that supports no two-qubit gate would only hurt yield,
/// cf. the `ising_model` special case, §5.3.1).
///
/// Returns squares in selection order, so the first `k` entries are
/// exactly the selection for a budget of `k` — the property the
/// architecture series generator relies on.
pub fn select_buses_weighted(
    coords: &[Coord],
    profile: &CouplingProfile,
    max_buses: usize,
) -> Vec<Square> {
    let candidates = candidate_squares(coords);
    let mut weight: BTreeMap<Square, i64> =
        candidates.iter().map(|&s| (s, cross_coupling_weight(s, coords, profile) as i64)).collect();
    let mut blocked: BTreeMap<Square, bool> = candidates.iter().map(|&s| (s, false)).collect();
    let mut selected = Vec::new();

    while selected.len() < max_buses {
        let mut best: Option<(i64, Square)> = None;
        for &s in &candidates {
            if blocked[&s] || weight[&s] <= 0 {
                continue;
            }
            let filtered =
                weight[&s] - s.neighbors4().iter().filter_map(|nb| weight.get(nb)).sum::<i64>();
            // Highest filtered weight; ties prefer the smaller origin.
            let better = match best {
                None => true,
                Some((bw, bs)) => filtered > bw || (filtered == bw && s < bs),
            };
            if better {
                best = Some((filtered, s));
            }
        }
        let Some((_, s)) = best else {
            break; // no square available for a 4-qubit bus
        };
        selected.push(s);
        *weight.get_mut(&s).expect("candidate") = 0;
        *blocked.get_mut(&s).expect("candidate") = true;
        for nb in s.neighbors4() {
            if let Some(w) = weight.get_mut(&nb) {
                *w = 0;
            }
            if let Some(b) = blocked.get_mut(&nb) {
                *b = true;
            }
        }
    }
    selected
}

/// Maximal 4-qubit bus packing: greedily upgrade every candidate square
/// in origin order, subject to the prohibited condition — "using 4-qubit
/// buses as much as possible", the connection style of the IBM baselines
/// and of the paper's `eff-layout-only` configuration (§5.2).
pub fn select_buses_maximal(coords: &[Coord]) -> Vec<Square> {
    let mut selected: Vec<Square> = Vec::new();
    for s in candidate_squares(coords) {
        if !selected.iter().any(|t| s.neighbors4().contains(t)) {
            selected.push(s);
        }
    }
    selected
}

/// Random 4-qubit bus selection — the paper's `eff-rd-bus` ablation
/// (§5.2): geometrically valid squares are chosen uniformly at random
/// (prohibited condition still enforced), ignoring coupling weights.
pub fn select_buses_random(coords: &[Coord], max_buses: usize, seed: u64) -> Vec<Square> {
    let mut available = candidate_squares(coords);
    available.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let mut selected: Vec<Square> = Vec::new();
    for s in available {
        if selected.len() >= max_buses {
            break;
        }
        let adjacent_to_selected = selected.iter().any(|t| s.neighbors4().contains(t));
        if !adjacent_to_selected {
            selected.push(s);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2x3 grid of qubits, indices row-major.
    fn grid23() -> Vec<Coord> {
        (0..2).flat_map(|r| (0..3).map(move |c| Coord::new(r, c))).collect()
    }

    #[test]
    fn candidates_need_three_corners() {
        let coords = grid23();
        assert_eq!(candidate_squares(&coords), vec![Square::new(0, 0), Square::new(0, 1)]);
        // An L of 3 qubits has one candidate square.
        let l = vec![Coord::new(0, 0), Coord::new(1, 0), Coord::new(0, 1)];
        assert_eq!(candidate_squares(&l), vec![Square::new(0, 0)]);
        // A bare pair has none.
        let pair = vec![Coord::new(0, 0), Coord::new(0, 1)];
        assert!(candidate_squares(&pair).is_empty());
    }

    #[test]
    fn cross_weight_counts_diagonals_only() {
        let coords = grid23();
        // Qubits: 0 1 2 / 3 4 5. Square (0,0) has diagonals (0,4), (3,1).
        let profile = CouplingProfile::from_edges(6, &[(0, 4, 7), (1, 3, 2), (0, 1, 100)]);
        assert_eq!(cross_coupling_weight(Square::new(0, 0), &coords, &profile), 9);
        assert_eq!(cross_coupling_weight(Square::new(0, 1), &coords, &profile), 0);
    }

    #[test]
    fn three_corner_square_counts_one_diagonal() {
        let l = vec![Coord::new(0, 0), Coord::new(1, 0), Coord::new(0, 1)];
        // Occupied diagonal is (1,0)-(0,1) = qubits 1, 2.
        let profile = CouplingProfile::from_edges(3, &[(1, 2, 5), (0, 1, 50)]);
        assert_eq!(cross_coupling_weight(Square::new(0, 0), &l, &profile), 5);
    }

    #[test]
    fn weighted_selection_prefers_heavy_diagonals() {
        let coords = grid23();
        // Heavy diagonal coupling on square (0,1): qubits (1,5) and (4,2).
        let profile = CouplingProfile::from_edges(6, &[(1, 5, 10), (0, 4, 1)]);
        let picks = select_buses_weighted(&coords, &profile, 2);
        // Square (0,1) wins; (0,0) is then blocked (adjacent).
        assert_eq!(picks, vec![Square::new(0, 1)]);
    }

    #[test]
    fn zero_weight_squares_are_never_selected() {
        let coords = grid23();
        // Chain coupling only: no diagonal demand at all.
        let profile = CouplingProfile::from_edges(6, &[(0, 1, 5), (1, 2, 5), (3, 4, 5)]);
        assert!(select_buses_weighted(&coords, &profile, 10).is_empty());
    }

    #[test]
    fn selection_is_a_prefix_chain() {
        // 3x3 grid, weights making several squares attractive.
        let coords: Vec<Coord> =
            (0..3).flat_map(|r| (0..3).map(move |c| Coord::new(r, c))).collect();
        // Diagonals: square (0,0): (0,4),(3,1); (1,1): (4,8),(7,5) etc.
        let profile = CouplingProfile::from_edges(9, &[(0, 4, 9), (4, 8, 7), (2, 4, 5), (4, 6, 3)]);
        let all = select_buses_weighted(&coords, &profile, 10);
        for k in 0..=all.len() {
            assert_eq!(select_buses_weighted(&coords, &profile, k), all[..k].to_vec());
        }
    }

    #[test]
    fn prohibited_condition_respected() {
        let coords: Vec<Coord> =
            (0..3).flat_map(|r| (0..4).map(move |c| Coord::new(r, c))).collect();
        let edges: Vec<(usize, usize, u32)> = (0..11).map(|i| (i, i + 1, 3)).collect();
        let all_pairs: Vec<(usize, usize, u32)> =
            (0..12).flat_map(|a| ((a + 1)..12).map(move |b| (a, b, 2))).collect();
        let _ = edges;
        let profile = CouplingProfile::from_edges(12, &all_pairs);
        let picks = select_buses_weighted(&coords, &profile, 100);
        for (i, a) in picks.iter().enumerate() {
            for b in &picks[i + 1..] {
                assert!(!a.neighbors4().contains(b), "adjacent squares selected: {a:?}, {b:?}");
            }
        }
        assert!(!picks.is_empty());
    }

    #[test]
    fn random_selection_respects_prohibition_and_budget() {
        let coords: Vec<Coord> =
            (0..4).flat_map(|r| (0..4).map(move |c| Coord::new(r, c))).collect();
        for seed in 0..10 {
            let picks = select_buses_random(&coords, 3, seed);
            assert!(picks.len() <= 3);
            for (i, a) in picks.iter().enumerate() {
                for b in &picks[i + 1..] {
                    assert!(!a.neighbors4().contains(b));
                }
            }
        }
    }

    #[test]
    fn random_selection_varies_with_seed() {
        let coords: Vec<Coord> =
            (0..4).flat_map(|r| (0..4).map(move |c| Coord::new(r, c))).collect();
        let a = select_buses_random(&coords, 4, 1);
        let b = select_buses_random(&coords, 4, 2);
        let c = select_buses_random(&coords, 4, 1);
        assert_eq!(a, c, "same seed must give same picks");
        assert_ne!(a, b, "different seeds should explore different designs");
    }

    #[test]
    fn filtered_weight_avoids_blocking_rich_neighbors() {
        // Two overlapping-ish options: a modest square surrounded by
        // heavy squares should lose to an isolated modest square.
        let coords: Vec<Coord> =
            (0..2).flat_map(|r| (0..5).map(move |c| Coord::new(r, c))).collect();
        // Qubits row-major: 0..4 / 5..9.
        // Square (0,0) diag (0,6),(5,1); (0,1) diag (1,7),(6,2);
        // (0,2) diag (2,8),(7,3); (0,3) diag (3,9),(8,4).
        let profile = CouplingProfile::from_edges(
            10,
            &[
                (1, 7, 6), // square (0,1): weight 6
                (0, 6, 5), // square (0,0): weight 5
                (2, 8, 5), // square (0,2): weight 5
                (3, 9, 4), // square (0,3): weight 4
            ],
        );
        let picks = select_buses_weighted(&coords, &profile, 2);
        // Plain greedy would take (0,1) [w=6] first, blocking both w=5
        // squares and ending with (0,3): total 10. Filtered weight takes
        // (0,0) or (0,2) first; the best pair is (0,0)+(0,2): total 10,
        // then (0,3) is blocked by... (0,2)-(0,3) adjacency. Check the
        // filter avoids the greedy trap of picking (0,1) first.
        assert_ne!(picks.first(), Some(&Square::new(0, 1)));
        let total: u64 = picks.iter().map(|&s| cross_coupling_weight(s, &coords, &profile)).sum();
        assert!(total >= 10, "filtered selection too weak: {picks:?} total {total}");
    }
}
