//! The application-specific architecture design flow — the paper's
//! primary contribution (§4).
//!
//! Given a program profile (`qpd-profile`), the flow runs three
//! subroutines, each respecting the physical constraints of
//! superconducting hardware:
//!
//! 1. **Layout design** ([`placement`], Algorithm 1): coupling-based qubit
//!    placement on a 2D lattice — strongly coupled logical qubits land on
//!    adjacent nodes.
//! 2. **Bus selection** ([`bus`], Algorithm 2): greedy filtered-weight
//!    selection of squares to upgrade to 4-qubit buses, under the
//!    prohibited (no-adjacent-squares) condition. A random variant
//!    implements the paper's `eff-rd-bus` ablation.
//! 3. **Frequency allocation** ([`freq`], Algorithm 3): center-out
//!    breadth-first assignment, choosing each qubit's frequency by local
//!    Monte Carlo yield.
//!
//! [`DesignFlow`] composes the three into an end-to-end pipeline that
//! emits a *series* of architectures trading performance against yield by
//! varying the number of 4-qubit buses (the paper's `eff-full` curve).
//!
//! Internally the pipeline is an explicit **stage graph** ([`stage`]):
//! each subroutine is a [`stage::Stage`] with a content key derived from
//! its true inputs, served through a bounded per-stage cache
//! ([`stage::StageCache`], `QPD_MEMO_CAP`) owned by a
//! [`stage::StagePlan`]. [`DesignFlow`] is a thin facade over the plan —
//! caching is bit-transparent, and a knob change recomputes only the
//! stages it dirties ([`stage::StageKind::invalidates`]).
//!
//! ```
//! use qpd_circuit::Circuit;
//! use qpd_profile::CouplingProfile;
//! use qpd_core::DesignFlow;
//!
//! // An 4-qubit toy program with a chain pattern.
//! let mut c = Circuit::new(4);
//! c.cx(0, 1).cx(1, 2).cx(2, 3).cx(1, 2);
//! let profile = CouplingProfile::of(&c);
//! let flow = DesignFlow::new().with_allocation_trials(200);
//! let arch = flow.design(&profile).unwrap();
//! assert_eq!(arch.num_qubits(), 4);
//! assert!(arch.is_connected());
//! assert!(arch.frequencies().is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod error;
pub mod freq;
pub mod pareto;
pub mod pipeline;
pub mod placement;
pub mod stage;

pub use bus::{
    candidate_squares, select_buses_maximal, select_buses_random, select_buses_weighted,
};
pub use error::DesignError;
pub use freq::FrequencyAllocator;
pub use pareto::{
    crowding_distances, dominates_nd, epsilon_cell, epsilon_dominates_nd,
    epsilon_weakly_dominates_nd, pareto_front, pareto_front_nd,
};
pub use pipeline::{BusStrategy, DesignFlow, FrequencyStrategy, LayoutJob};
pub use placement::{place_auxiliary, place_qubits};
pub use stage::{
    profile_key, AssembleJob, AssembleStage, BusOrderStage, PlacementStage, Stage, StageCache,
    StageCacheStats, StageKind, StagePlan, StageSet, MEMO_CAP_ENV,
};
