//! Qubit frequency plans and IBM's 5-frequency scheme.

use serde::{Deserialize, Serialize};

use crate::architecture::Architecture;
use crate::error::TopologyError;

/// The allowed pre-fabrication frequency band in GHz (paper §4.3): its
/// width equals the qubit anharmonicity magnitude (340 MHz), which keeps
/// designed frequencies clear of collision condition 4.
pub const ALLOWED_BAND_GHZ: (f64, f64) = (5.00, 5.34);

/// IBM's five frequencies in GHz (paper §5.2 / Figure 9): an arithmetic
/// progression from 5.00 to 5.27 GHz, rounded to the centi-GHz values the
/// figure displays.
pub const FIVE_FREQUENCIES_GHZ: [f64; 5] = [5.00, 5.07, 5.13, 5.20, 5.27];

/// A designed (pre-fabrication) frequency assignment, one value per qubit,
/// in GHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyPlan {
    ghz: Vec<f64>,
}

impl FrequencyPlan {
    /// Wraps per-qubit frequencies (GHz).
    pub fn new(ghz: Vec<f64>) -> Self {
        FrequencyPlan { ghz }
    }

    /// Number of qubits covered.
    pub fn len(&self) -> usize {
        self.ghz.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ghz.is_empty()
    }

    /// The designed frequency of qubit `q` in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn ghz(&self, q: usize) -> f64 {
        self.ghz[q]
    }

    /// All frequencies in qubit order.
    pub fn as_slice(&self) -> &[f64] {
        &self.ghz
    }

    /// Checks every frequency against the allowed band.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::FrequencyOutOfBand`] for the first
    /// violation.
    pub fn check_band(&self) -> Result<(), TopologyError> {
        let (lo, hi) = ALLOWED_BAND_GHZ;
        for (q, &f) in self.ghz.iter().enumerate() {
            if !(lo..=hi).contains(&f) {
                return Err(TopologyError::FrequencyOutOfBand { qubit: q, ghz: f });
            }
        }
        Ok(())
    }
}

impl FromIterator<f64> for FrequencyPlan {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        FrequencyPlan::new(iter.into_iter().collect())
    }
}

/// Assigns IBM's 5-frequency scheme by lattice position.
///
/// Frequency index of the qubit at `(row, col)` is `(2*row + col) mod 5`,
/// the tiling IBM uses on its 20-qubit chip (paper Figure 9 (3)); the
/// rule extends to arbitrary (including irregular) layouts, which is how
/// the `eff-5-freq` and `eff-layout-only` experiment configurations apply
/// the baseline scheme to generated layouts (§5.2).
pub fn five_frequency_plan(arch: &Architecture) -> FrequencyPlan {
    (0..arch.num_qubits())
        .map(|q| {
            let c = arch.coord(q);
            let idx = (2 * c.row + c.col).rem_euclid(5) as usize;
            FIVE_FREQUENCIES_GHZ[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::Architecture;

    #[test]
    fn band_check() {
        assert!(FrequencyPlan::new(vec![5.0, 5.34, 5.17]).check_band().is_ok());
        let err = FrequencyPlan::new(vec![5.0, 4.99]).check_band().unwrap_err();
        assert!(matches!(err, TopologyError::FrequencyOutOfBand { qubit: 1, .. }));
        let err = FrequencyPlan::new(vec![5.35]).check_band().unwrap_err();
        assert!(matches!(err, TopologyError::FrequencyOutOfBand { qubit: 0, .. }));
    }

    #[test]
    fn five_frequencies_are_in_band() {
        let plan = FrequencyPlan::new(FIVE_FREQUENCIES_GHZ.to_vec());
        assert!(plan.check_band().is_ok());
    }

    #[test]
    fn five_frequency_plan_matches_20q_pattern() {
        // Figure 9 (3): rows of the 4x5 chip read 1 2 3 4 5 / 3 4 5 1 2 /
        // 5 1 2 3 4 / 2 3 4 5 1 (1-based frequency indices).
        let mut b = Architecture::builder("4x5");
        for r in 0..4 {
            for c in 0..5 {
                b.qubit(r, c);
            }
        }
        let arch = b.build().unwrap();
        let plan = five_frequency_plan(&arch);
        let expected_indices = [[0, 1, 2, 3, 4], [2, 3, 4, 0, 1], [4, 0, 1, 2, 3], [1, 2, 3, 4, 0]];
        for (q, &f) in plan.as_slice().iter().enumerate() {
            let (r, c) = (q / 5, q % 5);
            assert_eq!(f, FIVE_FREQUENCIES_GHZ[expected_indices[r][c]], "qubit {q}");
        }
    }

    #[test]
    fn plan_accessors() {
        let plan: FrequencyPlan = [5.0, 5.1].into_iter().collect();
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.ghz(1), 5.1);
        assert_eq!(plan.as_slice(), &[5.0, 5.1]);
    }

    #[test]
    fn negative_coords_wrap_correctly() {
        let mut b = Architecture::builder("neg");
        b.qubit(-1, -1).qubit(-1, 0).qubit(0, -1).qubit(0, 0);
        let arch = b.build().unwrap();
        let plan = five_frequency_plan(&arch);
        // (2*-1 + -1) mod 5 = -3 mod 5 = 2.
        assert_eq!(plan.ghz(0), FIVE_FREQUENCIES_GHZ[2]);
        assert_eq!(plan.ghz(3), FIVE_FREQUENCIES_GHZ[0]);
    }
}
