//! Qubit frequency plans and IBM's 5-frequency scheme.

use serde::{Deserialize, Serialize};

use crate::architecture::Architecture;
use crate::error::TopologyError;

/// The allowed pre-fabrication frequency band in GHz (paper §4.3): its
/// width equals the qubit anharmonicity magnitude (340 MHz), which keeps
/// designed frequencies clear of collision condition 4.
pub const ALLOWED_BAND_GHZ: (f64, f64) = (5.00, 5.34);

/// IBM's five frequencies in GHz (paper §5.2 / Figure 9): an arithmetic
/// progression from 5.00 to 5.27 GHz, rounded to the centi-GHz values the
/// figure displays.
pub const FIVE_FREQUENCIES_GHZ: [f64; 5] = [5.00, 5.07, 5.13, 5.20, 5.27];

/// The allowed qubit band of the tunable-coupler family in GHz (Li &
/// Jin, arXiv:2212.13751): couplers absorb part of the collision budget,
/// so data qubits may spread over a band wider than one anharmonicity.
pub const TUNABLE_COUPLER_BAND_GHZ: (f64, f64) = (4.80, 5.40);

/// The tunable-coupler pattern menu in GHz: six frequencies spanning the
/// wider band, used where the fixed-frequency family uses
/// [`FIVE_FREQUENCIES_GHZ`].
pub const TUNABLE_COUPLER_FREQUENCIES_GHZ: [f64; 6] = [4.80, 4.92, 5.04, 5.16, 5.28, 5.40];

/// The allowed band of the heavy-hexagon family in GHz (Bunyk et al.,
/// arXiv:1401.5504 lineage; IBM's degree-3 lattices run lower and
/// narrower than the dense-lattice band).
pub const HEAVY_HEX_BAND_GHZ: (f64, f64) = (4.90, 5.20);

/// The heavy-hexagon pattern menu in GHz: degree-3 connectivity needs
/// only three frequency groups to keep neighbors (and
/// next-but-one-neighbors through a bridge) apart. The values sit off
/// the five-frequency menu so mixed-family reports stay unambiguous.
pub const HEAVY_HEX_FREQUENCIES_GHZ: [f64; 3] = [4.90, 5.04, 5.18];

/// A designed (pre-fabrication) frequency assignment, one value per qubit,
/// in GHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyPlan {
    ghz: Vec<f64>,
}

impl FrequencyPlan {
    /// Wraps per-qubit frequencies (GHz).
    pub fn new(ghz: Vec<f64>) -> Self {
        FrequencyPlan { ghz }
    }

    /// Number of qubits covered.
    pub fn len(&self) -> usize {
        self.ghz.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ghz.is_empty()
    }

    /// The designed frequency of qubit `q` in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn ghz(&self, q: usize) -> f64 {
        self.ghz[q]
    }

    /// All frequencies in qubit order.
    pub fn as_slice(&self) -> &[f64] {
        &self.ghz
    }

    /// Checks every frequency against the default fixed-frequency band
    /// ([`ALLOWED_BAND_GHZ`]).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::FrequencyOutOfBand`] for the first
    /// violation.
    pub fn check_band(&self) -> Result<(), TopologyError> {
        self.check_band_within(ALLOWED_BAND_GHZ)
    }

    /// Checks every frequency against an explicit band (hardware families
    /// other than the paper's fixed-frequency transmon carry their own
    /// bands).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::FrequencyOutOfBand`] for the first
    /// violation.
    pub fn check_band_within(&self, band: (f64, f64)) -> Result<(), TopologyError> {
        let (lo, hi) = band;
        for (q, &f) in self.ghz.iter().enumerate() {
            if !(lo..=hi).contains(&f) {
                return Err(TopologyError::FrequencyOutOfBand { qubit: q, ghz: f });
            }
        }
        Ok(())
    }
}

impl FromIterator<f64> for FrequencyPlan {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        FrequencyPlan::new(iter.into_iter().collect())
    }
}

/// Assigns IBM's 5-frequency scheme by lattice position.
///
/// Frequency index of the qubit at `(row, col)` is `(2*row + col) mod 5`,
/// the tiling IBM uses on its 20-qubit chip (paper Figure 9 (3)); the
/// rule extends to arbitrary (including irregular) layouts, which is how
/// the `eff-5-freq` and `eff-layout-only` experiment configurations apply
/// the baseline scheme to generated layouts (§5.2).
pub fn five_frequency_plan(arch: &Architecture) -> FrequencyPlan {
    pattern_frequency_plan(arch, &FIVE_FREQUENCIES_GHZ)
}

/// Assigns a fixed frequency menu by lattice position — the
/// [`five_frequency_plan`] tiling rule generalized to an arbitrary menu:
/// the qubit at `(row, col)` takes `menu[(2*row + col) mod menu.len()]`.
/// Hardware families with their own pattern menus (tunable-coupler,
/// heavy-hex) tile exactly like the fixed-frequency family does with
/// IBM's five frequencies.
///
/// # Panics
///
/// Panics if `menu` is empty.
pub fn pattern_frequency_plan(arch: &Architecture, menu: &[f64]) -> FrequencyPlan {
    assert!(!menu.is_empty(), "pattern menu must be non-empty");
    (0..arch.num_qubits())
        .map(|q| {
            let c = arch.coord(q);
            let idx = (2 * c.row + c.col).rem_euclid(menu.len() as i32) as usize;
            menu[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::Architecture;

    #[test]
    fn band_check() {
        assert!(FrequencyPlan::new(vec![5.0, 5.34, 5.17]).check_band().is_ok());
        let err = FrequencyPlan::new(vec![5.0, 4.99]).check_band().unwrap_err();
        assert!(matches!(err, TopologyError::FrequencyOutOfBand { qubit: 1, .. }));
        let err = FrequencyPlan::new(vec![5.35]).check_band().unwrap_err();
        assert!(matches!(err, TopologyError::FrequencyOutOfBand { qubit: 0, .. }));
    }

    #[test]
    fn five_frequencies_are_in_band() {
        let plan = FrequencyPlan::new(FIVE_FREQUENCIES_GHZ.to_vec());
        assert!(plan.check_band().is_ok());
    }

    #[test]
    fn five_frequency_plan_matches_20q_pattern() {
        // Figure 9 (3): rows of the 4x5 chip read 1 2 3 4 5 / 3 4 5 1 2 /
        // 5 1 2 3 4 / 2 3 4 5 1 (1-based frequency indices).
        let mut b = Architecture::builder("4x5");
        for r in 0..4 {
            for c in 0..5 {
                b.qubit(r, c);
            }
        }
        let arch = b.build().unwrap();
        let plan = five_frequency_plan(&arch);
        let expected_indices = [[0, 1, 2, 3, 4], [2, 3, 4, 0, 1], [4, 0, 1, 2, 3], [1, 2, 3, 4, 0]];
        for (q, &f) in plan.as_slice().iter().enumerate() {
            let (r, c) = (q / 5, q % 5);
            assert_eq!(f, FIVE_FREQUENCIES_GHZ[expected_indices[r][c]], "qubit {q}");
        }
    }

    #[test]
    fn explicit_band_check_matches_family_bands() {
        let plan = FrequencyPlan::new(vec![4.80, 5.40]);
        assert!(plan.check_band().is_err(), "outside the fixed-frequency band");
        assert!(plan.check_band_within(TUNABLE_COUPLER_BAND_GHZ).is_ok());
        let hh = FrequencyPlan::new(HEAVY_HEX_FREQUENCIES_GHZ.to_vec());
        assert!(hh.check_band_within(HEAVY_HEX_BAND_GHZ).is_ok());
        assert!(hh.check_band_within((5.0, 5.1)).is_err());
    }

    #[test]
    fn pattern_plan_generalizes_the_five_frequency_rule() {
        let mut b = Architecture::builder("3x3");
        for r in 0..3 {
            for c in 0..3 {
                b.qubit(r, c);
            }
        }
        let arch = b.build().unwrap();
        // With the five-frequency menu the generalized rule is the
        // original plan, bit for bit.
        assert_eq!(
            pattern_frequency_plan(&arch, &FIVE_FREQUENCIES_GHZ),
            five_frequency_plan(&arch)
        );
        // A 3-entry menu wraps with the same (2r + c) tiling.
        let plan = pattern_frequency_plan(&arch, &HEAVY_HEX_FREQUENCIES_GHZ);
        assert_eq!(plan.ghz(0), HEAVY_HEX_FREQUENCIES_GHZ[0]);
        assert_eq!(plan.ghz(1), HEAVY_HEX_FREQUENCIES_GHZ[1]);
        assert_eq!(plan.ghz(3), HEAVY_HEX_FREQUENCIES_GHZ[2]); // (1,0): 2 mod 3
                                                               // No lattice edge joins two same-frequency qubits.
        for &(a, b) in arch.coupling_edges() {
            assert!((plan.ghz(a) - plan.ghz(b)).abs() > 1e-9, "degenerate edge {a},{b}");
        }
    }

    #[test]
    fn plan_accessors() {
        let plan: FrequencyPlan = [5.0, 5.1].into_iter().collect();
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.ghz(1), 5.1);
        assert_eq!(plan.as_slice(), &[5.0, 5.1]);
    }

    #[test]
    fn negative_coords_wrap_correctly() {
        let mut b = Architecture::builder("neg");
        b.qubit(-1, -1).qubit(-1, 0).qubit(0, -1).qubit(0, 0);
        let arch = b.build().unwrap();
        let plan = five_frequency_plan(&arch);
        // (2*-1 + -1) mod 5 = -3 mod 5 = 2.
        assert_eq!(plan.ghz(0), FIVE_FREQUENCIES_GHZ[2]);
        assert_eq!(plan.ghz(3), FIVE_FREQUENCIES_GHZ[0]);
    }
}
