//! A plain-text interchange format for chip designs.
//!
//! Designed chips need to leave the process that created them (to be
//! reviewed, fabricated, or fed to other tools), so `Architecture` has a
//! stable line-oriented format:
//!
//! ```text
//! chip eff-7q-b2
//! qubit 0 0 0 5.17
//! qubit 1 0 1 5.08
//! bus4 0 0
//! ```
//!
//! - `chip <name>` — header (required first line);
//! - `qubit <id> <row> <col> [ghz]` — one per qubit, ids contiguous from
//!   0, frequency optional (all-or-none across the file);
//! - `bus4 <row> <col>` — a 4-qubit bus square by origin;
//! - `#` comments and blank lines are ignored.

use std::fmt::Write as _;

use crate::architecture::Architecture;
use crate::error::TopologyError;
use crate::freq::FrequencyPlan;

/// Serializes an architecture to the text format.
pub fn to_text(arch: &Architecture) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "chip {}", arch.name());
    for q in 0..arch.num_qubits() {
        let c = arch.coord(q);
        match arch.frequencies() {
            Some(plan) => {
                let _ = writeln!(out, "qubit {q} {} {} {}", c.row, c.col, plan.ghz(q));
            }
            None => {
                let _ = writeln!(out, "qubit {q} {} {}", c.row, c.col);
            }
        }
    }
    for s in arch.four_qubit_buses() {
        let _ = writeln!(out, "bus4 {} {}", s.origin.row, s.origin.col);
    }
    out
}

/// Error parsing the chip text format: 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseChipError {
    line: usize,
    message: String,
}

impl ParseChipError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseChipError { line, message: message.into() }
    }

    /// 1-based line of the problem.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParseChipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chip format error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseChipError {}

impl From<TopologyError> for ParseChipError {
    fn from(e: TopologyError) -> Self {
        ParseChipError::new(0, e.to_string())
    }
}

/// Parses the text format back into an [`Architecture`].
///
/// # Errors
///
/// Returns a [`ParseChipError`] on malformed lines, non-contiguous qubit
/// ids, mixed frequency presence, or architecture validation failures
/// (duplicate nodes, prohibited condition, out-of-band frequencies).
pub fn from_text(text: &str) -> Result<Architecture, ParseChipError> {
    let mut name: Option<String> = None;
    let mut qubits: Vec<(usize, i32, i32, Option<f64>)> = Vec::new();
    let mut buses: Vec<(i32, i32)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        match keyword {
            "chip" => {
                if name.is_some() {
                    return Err(ParseChipError::new(lineno, "duplicate `chip` header"));
                }
                if rest.len() != 1 {
                    return Err(ParseChipError::new(lineno, "usage: chip <name>"));
                }
                name = Some(rest[0].to_string());
            }
            "qubit" => {
                if rest.len() != 3 && rest.len() != 4 {
                    return Err(ParseChipError::new(lineno, "usage: qubit <id> <row> <col> [ghz]"));
                }
                let id: usize =
                    rest[0].parse().map_err(|_| ParseChipError::new(lineno, "bad qubit id"))?;
                let row: i32 =
                    rest[1].parse().map_err(|_| ParseChipError::new(lineno, "bad row"))?;
                let col: i32 =
                    rest[2].parse().map_err(|_| ParseChipError::new(lineno, "bad col"))?;
                let ghz = match rest.get(3) {
                    Some(v) => Some(
                        v.parse::<f64>()
                            .map_err(|_| ParseChipError::new(lineno, "bad frequency"))?,
                    ),
                    None => None,
                };
                qubits.push((id, row, col, ghz));
            }
            "bus4" => {
                if rest.len() != 2 {
                    return Err(ParseChipError::new(lineno, "usage: bus4 <row> <col>"));
                }
                let row: i32 =
                    rest[0].parse().map_err(|_| ParseChipError::new(lineno, "bad row"))?;
                let col: i32 =
                    rest[1].parse().map_err(|_| ParseChipError::new(lineno, "bad col"))?;
                buses.push((row, col));
            }
            other => return Err(ParseChipError::new(lineno, format!("unknown keyword `{other}`"))),
        }
    }

    let Some(name) = name else {
        return Err(ParseChipError::new(1, "missing `chip <name>` header"));
    };
    qubits.sort_by_key(|&(id, ..)| id);
    for (expected, &(id, ..)) in qubits.iter().enumerate() {
        if id != expected {
            return Err(ParseChipError::new(
                0,
                format!("qubit ids must be contiguous from 0; missing id {expected}"),
            ));
        }
    }
    let with_freq = qubits.iter().filter(|q| q.3.is_some()).count();
    if with_freq != 0 && with_freq != qubits.len() {
        return Err(ParseChipError::new(0, "either every qubit or no qubit may carry a frequency"));
    }

    let mut builder = Architecture::builder(name);
    for &(_, row, col, _) in &qubits {
        builder.qubit(row, col);
    }
    for &(row, col) in &buses {
        builder.four_qubit_bus(row, col);
    }
    let arch = builder.build()?;
    if with_freq > 0 {
        let plan = FrequencyPlan::new(qubits.iter().map(|q| q.3.expect("checked above")).collect());
        Ok(arch.with_frequencies(plan)?)
    } else {
        Ok(arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::BusMode;
    use crate::ibm;

    #[test]
    fn roundtrip_baseline() {
        let arch = ibm::ibm_20q_4x5(BusMode::MaxFourQubit);
        let text = to_text(&arch);
        let back = from_text(&text).unwrap();
        assert_eq!(back, arch);
    }

    #[test]
    fn roundtrip_without_frequencies() {
        let mut b = Architecture::builder("bare");
        b.qubit(0, 0).qubit(0, 1).qubit(1, 0).four_qubit_bus(0, 0);
        let arch = b.build().unwrap();
        let back = from_text(&to_text(&arch)).unwrap();
        assert_eq!(back, arch);
        assert!(back.frequencies().is_none());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a chip\nchip demo\n\nqubit 0 0 0\nqubit 1 0 1\n";
        let arch = from_text(text).unwrap();
        assert_eq!(arch.num_qubits(), 2);
        assert_eq!(arch.name(), "demo");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("chip x\nqubit zero 0 0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        let err = from_text("qubit 0 0 0\n").unwrap_err();
        assert!(err.to_string().contains("chip"));
        let err = from_text("chip a\nchip b\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        let err = from_text("chip a\nwires 0 0\n").unwrap_err();
        assert!(err.to_string().contains("wires"));
    }

    #[test]
    fn validation_errors_propagate() {
        // Adjacent 4-qubit buses are rejected by Architecture validation.
        let text = "chip bad\nqubit 0 0 0\nqubit 1 0 1\nqubit 2 0 2\nqubit 3 1 0\nqubit 4 1 1\nqubit 5 1 2\nbus4 0 0\nbus4 0 1\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn mixed_frequencies_rejected() {
        let text = "chip m\nqubit 0 0 0 5.1\nqubit 1 0 1\n";
        let err = from_text(text).unwrap_err();
        assert!(err.to_string().contains("every qubit"));
    }

    #[test]
    fn non_contiguous_ids_rejected() {
        let text = "chip m\nqubit 0 0 0\nqubit 2 0 1\n";
        let err = from_text(text).unwrap_err();
        assert!(err.to_string().contains("contiguous"));
    }
}
