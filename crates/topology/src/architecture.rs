//! The chip architecture: placed qubits, buses, and the derived coupling
//! graph.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::error::TopologyError;
use crate::freq::FrequencyPlan;

/// A unit square of the lattice, identified by its origin — the corner
/// with minimum row and column. Its four corners are `(r, c)`,
/// `(r+1, c)`, `(r, c+1)`, `(r+1, c+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Square {
    /// Origin corner (minimum row and column).
    pub origin: Coord,
}

impl Square {
    /// The square with the given origin corner.
    pub const fn new(row: i32, col: i32) -> Self {
        Square { origin: Coord::new(row, col) }
    }

    /// The four corner coordinates: origin, south, east, south-east.
    pub fn corners(self) -> [Coord; 4] {
        let Coord { row, col } = self.origin;
        [
            Coord::new(row, col),
            Coord::new(row + 1, col),
            Coord::new(row, col + 1),
            Coord::new(row + 1, col + 1),
        ]
    }

    /// The two diagonal corner pairs.
    pub fn diagonals(self) -> [(Coord, Coord); 2] {
        let Coord { row, col } = self.origin;
        [
            (Coord::new(row, col), Coord::new(row + 1, col + 1)),
            (Coord::new(row + 1, col), Coord::new(row, col + 1)),
        ]
    }

    /// The four edge-adjacent squares (those sharing a side with `self`),
    /// which the prohibited condition blocks from also hosting a 4-qubit
    /// bus.
    pub fn neighbors4(self) -> [Square; 4] {
        let Coord { row, col } = self.origin;
        [
            Square::new(row - 1, col),
            Square::new(row + 1, col),
            Square::new(row, col - 1),
            Square::new(row, col + 1),
        ]
    }
}

/// Baseline connection styles for regular lattices (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusMode {
    /// 2-qubit buses only: the coupling graph is the occupied lattice
    /// grid.
    TwoQubitOnly,
    /// As many 4-qubit buses as the prohibited condition allows.
    MaxFourQubit,
}

/// An immutable, validated chip architecture.
///
/// Invariants enforced at construction:
/// - every qubit occupies a distinct lattice node;
/// - every 4-qubit bus square has at least three placed corner qubits;
/// - no two 4-qubit buses are edge-adjacent (prohibited condition).
///
/// The coupling graph contains every occupied lattice edge (2-qubit buses
/// or 4-qubit bus sides) plus the occupied diagonal pairs of each 4-qubit
/// bus square.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    name: String,
    coords: Vec<Coord>,
    four_squares: Vec<Square>,
    /// Derived coupling edges, `a < b`, sorted.
    edges: Vec<(usize, usize)>,
    /// Derived adjacency lists.
    neighbors: Vec<Vec<usize>>,
    frequencies: Option<FrequencyPlan>,
}

impl Architecture {
    /// Starts building an architecture.
    pub fn builder(name: impl Into<String>) -> ArchitectureBuilder {
        ArchitectureBuilder { name: name.into(), coords: Vec::new(), squares: Vec::new() }
    }

    /// Human-readable architecture name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.coords.len()
    }

    /// Lattice coordinate of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn coord(&self, q: usize) -> Coord {
        self.coords[q]
    }

    /// All qubit coordinates in qubit order.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// The qubit at lattice node `coord`, if any.
    pub fn qubit_at(&self, coord: Coord) -> Option<usize> {
        self.coords.iter().position(|&c| c == coord)
    }

    /// The coupling edges (`a < b`, sorted ascending).
    pub fn coupling_edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Qubits coupled to `q`, ascending.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.neighbors[q]
    }

    /// Coupling degree of qubit `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.neighbors[q].len()
    }

    /// The selected 4-qubit bus squares, ascending by origin.
    pub fn four_qubit_buses(&self) -> &[Square] {
        &self.four_squares
    }

    /// The 2-qubit buses: occupied lattice edges not covered by any
    /// 4-qubit bus square (a 4-qubit bus replaces the 2-qubit buses on its
    /// sides, paper §4.2).
    pub fn two_qubit_buses(&self) -> Vec<(usize, usize)> {
        let covered: BTreeSet<(Coord, Coord)> = self
            .four_squares
            .iter()
            .flat_map(|s| {
                let c = s.corners();
                // The four sides of the square, normalized (min, max).
                [(c[0], c[1]), (c[0], c[2]), (c[1], c[3]), (c[2], c[3])]
            })
            .collect();
        self.edges
            .iter()
            .copied()
            .filter(|&(a, b)| {
                let (ca, cb) = (self.coords[a], self.coords[b]);
                if !ca.is_adjacent(cb) {
                    return false; // diagonal coupling belongs to a 4q bus
                }
                let key = if ca < cb { (ca, cb) } else { (cb, ca) };
                !covered.contains(&key)
            })
            .collect()
    }

    /// Total bus count: 2-qubit buses plus 4-qubit buses. This is the
    /// "hardware resource" count the paper trades against yield.
    pub fn bus_count(&self) -> usize {
        self.two_qubit_buses().len() + self.four_squares.len()
    }

    /// Whether the coupling graph is connected (ignoring a zero-qubit
    /// architecture, which cannot be built).
    pub fn is_connected(&self) -> bool {
        let n = self.num_qubits();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(q) = queue.pop_front() {
            for &j in self.neighbors(q) {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    queue.push_back(j);
                }
            }
        }
        count == n
    }

    /// All-pairs shortest-path distances over the coupling graph (BFS).
    /// Unreachable pairs get `u32::MAX`.
    pub fn distance_matrix(&self) -> Vec<Vec<u32>> {
        let n = self.num_qubits();
        let mut dist = vec![vec![u32::MAX; n]; n];
        for start in 0..n {
            let row = &mut dist[start];
            row[start] = 0;
            let mut queue = VecDeque::from([start]);
            while let Some(q) = queue.pop_front() {
                for &j in self.neighbors(q) {
                    if row[j] == u32::MAX {
                        row[j] = row[q] + 1;
                        queue.push_back(j);
                    }
                }
            }
        }
        dist
    }

    /// The designed frequency plan, if one has been attached.
    pub fn frequencies(&self) -> Option<&FrequencyPlan> {
        self.frequencies.as_ref()
    }

    /// Attaches a frequency plan, validating its size and the default
    /// fixed-frequency band ([`crate::ALLOWED_BAND_GHZ`]).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::FrequencyPlanSize`] or
    /// [`TopologyError::FrequencyOutOfBand`].
    pub fn with_frequencies(self, plan: FrequencyPlan) -> Result<Self, TopologyError> {
        self.with_frequencies_in_band(plan, crate::ALLOWED_BAND_GHZ)
    }

    /// Attaches a frequency plan, validating its size against an explicit
    /// allowed band — the entry point for hardware families whose bands
    /// differ from the paper's fixed-frequency transmon.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::FrequencyPlanSize`] or
    /// [`TopologyError::FrequencyOutOfBand`].
    pub fn with_frequencies_in_band(
        mut self,
        plan: FrequencyPlan,
        band: (f64, f64),
    ) -> Result<Self, TopologyError> {
        if plan.len() != self.num_qubits() {
            return Err(TopologyError::FrequencyPlanSize {
                provided: plan.len(),
                qubits: self.num_qubits(),
            });
        }
        plan.check_band_within(band)?;
        self.frequencies = Some(plan);
        Ok(self)
    }

    /// Returns a copy with a different name (used when labeling experiment
    /// series).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The qubit closest to the geometric centroid of the layout
    /// (Algorithm 3 starts frequency allocation here). Ties break toward
    /// the lower qubit index.
    pub fn center_qubit(&self) -> usize {
        let n = self.num_qubits() as f64;
        let mean_row = self.coords.iter().map(|c| c.row as f64).sum::<f64>() / n;
        let mean_col = self.coords.iter().map(|c| c.col as f64).sum::<f64>() / n;
        (0..self.num_qubits())
            .min_by(|&a, &b| {
                let da = (self.coords[a].row as f64 - mean_row).powi(2)
                    + (self.coords[a].col as f64 - mean_col).powi(2);
                let db = (self.coords[b].row as f64 - mean_row).powi(2)
                    + (self.coords[b].col as f64 - mean_col).powi(2);
                da.total_cmp(&db)
            })
            .expect("non-empty architecture")
    }

    /// Qubits within coupling-graph distance `radius` of `q` (including
    /// `q` itself), ascending.
    pub fn ball(&self, q: usize, radius: u32) -> Vec<usize> {
        let mut dist: BTreeMap<usize, u32> = BTreeMap::new();
        dist.insert(q, 0);
        let mut queue = VecDeque::from([q]);
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            if d == radius {
                continue;
            }
            for &v in self.neighbors(u) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(d + 1);
                    queue.push_back(v);
                }
            }
        }
        dist.into_keys().collect()
    }
}

/// Builder for [`Architecture`] (paper §4's design flow emits these).
#[derive(Debug, Clone)]
pub struct ArchitectureBuilder {
    name: String,
    coords: Vec<Coord>,
    squares: Vec<Square>,
}

impl ArchitectureBuilder {
    /// Places a qubit at `(row, col)`; qubit indices follow call order.
    pub fn qubit(&mut self, row: i32, col: i32) -> &mut Self {
        self.coords.push(Coord::new(row, col));
        self
    }

    /// Places a qubit at a coordinate.
    pub fn qubit_at(&mut self, coord: Coord) -> &mut Self {
        self.coords.push(coord);
        self
    }

    /// Places qubits at all coordinates, in order.
    pub fn qubits<I: IntoIterator<Item = Coord>>(&mut self, coords: I) -> &mut Self {
        self.coords.extend(coords);
        self
    }

    /// Upgrades the square with origin `(row, col)` to a 4-qubit bus.
    pub fn four_qubit_bus(&mut self, row: i32, col: i32) -> &mut Self {
        self.squares.push(Square::new(row, col));
        self
    }

    /// Upgrades a square to a 4-qubit bus.
    pub fn four_qubit_bus_at(&mut self, square: Square) -> &mut Self {
        self.squares.push(square);
        self
    }

    /// Validates and builds the architecture.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: duplicate coordinates, empty
    /// layout, under-populated or duplicate squares, or edge-adjacent
    /// 4-qubit buses (the prohibited condition).
    pub fn build(&self) -> Result<Architecture, TopologyError> {
        if self.coords.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut index: BTreeMap<Coord, usize> = BTreeMap::new();
        for (q, &c) in self.coords.iter().enumerate() {
            if index.insert(c, q).is_some() {
                return Err(TopologyError::DuplicateCoord { coord: c });
            }
        }

        let mut squares = self.squares.clone();
        squares.sort();
        for pair in squares.windows(2) {
            if pair[0] == pair[1] {
                return Err(TopologyError::DuplicateSquare { origin: pair[0].origin });
            }
        }
        let square_set: BTreeSet<Square> = squares.iter().copied().collect();
        for &s in &squares {
            let occupied = s.corners().iter().filter(|c| index.contains_key(c)).count();
            if occupied < 3 {
                return Err(TopologyError::SquareTooEmpty { origin: s.origin, occupied });
            }
            for nb in s.neighbors4() {
                if square_set.contains(&nb) {
                    let (a, b) = if s.origin < nb.origin {
                        (s.origin, nb.origin)
                    } else {
                        (nb.origin, s.origin)
                    };
                    return Err(TopologyError::AdjacentFourQubitBuses { a, b });
                }
            }
        }

        // Derive coupling edges: all occupied lattice edges...
        let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (&c, &q) in &index {
            for nb in [Coord::new(c.row + 1, c.col), Coord::new(c.row, c.col + 1)] {
                if let Some(&r) = index.get(&nb) {
                    edge_set.insert((q.min(r), q.max(r)));
                }
            }
        }
        // ...plus occupied diagonals of each 4-qubit bus square.
        for &s in &squares {
            for (a, b) in s.diagonals() {
                if let (Some(&qa), Some(&qb)) = (index.get(&a), index.get(&b)) {
                    edge_set.insert((qa.min(qb), qa.max(qb)));
                }
            }
        }

        let edges: Vec<(usize, usize)> = edge_set.into_iter().collect();
        let mut neighbors = vec![Vec::new(); self.coords.len()];
        for &(a, b) in &edges {
            neighbors[a].push(b);
            neighbors[b].push(a);
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }

        Ok(Architecture {
            name: self.name.clone(),
            coords: self.coords.clone(),
            four_squares: squares,
            edges,
            neighbors,
            frequencies: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: i32, cols: i32) -> ArchitectureBuilder {
        let mut b = Architecture::builder(format!("{rows}x{cols}"));
        for r in 0..rows {
            for c in 0..cols {
                b.qubit(r, c);
            }
        }
        b
    }

    #[test]
    fn grid_edges() {
        let arch = grid(2, 3).build().unwrap();
        // 2x3 grid: 3 horizontal per row * 2? no: per row 2 horizontal
        // edges * 2 rows + 3 vertical = 7.
        assert_eq!(arch.coupling_edges().len(), 7);
        assert!(arch.is_connected());
        assert_eq!(arch.bus_count(), 7);
    }

    #[test]
    fn duplicate_coord_rejected() {
        let mut b = Architecture::builder("dup");
        b.qubit(0, 0).qubit(0, 0);
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::DuplicateCoord { coord: Coord::new(0, 0) }
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Architecture::builder("e").build().unwrap_err(), TopologyError::Empty);
    }

    #[test]
    fn four_qubit_bus_adds_diagonals() {
        let mut b = grid(2, 2);
        b.four_qubit_bus(0, 0);
        let arch = b.build().unwrap();
        // 4 side edges + 2 diagonals.
        assert_eq!(arch.coupling_edges().len(), 6);
        // All sides are covered by the square: no 2-qubit buses remain.
        assert!(arch.two_qubit_buses().is_empty());
        assert_eq!(arch.bus_count(), 1);
        // Every qubit now has degree 3.
        for q in 0..4 {
            assert_eq!(arch.degree(q), 3);
        }
    }

    #[test]
    fn three_qubit_corner_square() {
        // L-shaped layout: only 3 corners of the square occupied.
        let mut b = Architecture::builder("L");
        b.qubit(0, 0).qubit(1, 0).qubit(0, 1);
        b.four_qubit_bus(0, 0);
        let arch = b.build().unwrap();
        // Sides (0,0)-(1,0), (0,0)-(0,1) plus the occupied diagonal
        // (1,0)-(0,1).
        assert_eq!(arch.coupling_edges().len(), 3);
        assert!(arch.is_connected());
    }

    #[test]
    fn square_with_two_qubits_rejected() {
        let mut b = Architecture::builder("thin");
        b.qubit(0, 0).qubit(0, 1);
        b.four_qubit_bus(0, 0);
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::SquareTooEmpty { occupied: 2, .. }
        ));
    }

    #[test]
    fn prohibited_condition_enforced() {
        let mut b = grid(2, 3);
        b.four_qubit_bus(0, 0).four_qubit_bus(0, 1);
        assert!(matches!(b.build().unwrap_err(), TopologyError::AdjacentFourQubitBuses { .. }));
        // Diagonal squares are fine.
        let mut b = grid(3, 3);
        b.four_qubit_bus(0, 0).four_qubit_bus(1, 1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn duplicate_square_rejected() {
        let mut b = grid(2, 2);
        b.four_qubit_bus(0, 0).four_qubit_bus(0, 0);
        assert!(matches!(b.build().unwrap_err(), TopologyError::DuplicateSquare { .. }));
    }

    #[test]
    fn two_qubit_buses_exclude_square_sides() {
        let mut b = grid(2, 3);
        b.four_qubit_bus(0, 0);
        let arch = b.build().unwrap();
        // Total lattice edges 7; square covers 4 sides; 3 two-qubit buses
        // remain; coupling edges = 7 + 2 diagonals = 9.
        assert_eq!(arch.two_qubit_buses().len(), 3);
        assert_eq!(arch.coupling_edges().len(), 9);
        assert_eq!(arch.bus_count(), 4);
    }

    #[test]
    fn distance_matrix_bfs() {
        let arch = grid(1, 4).build().unwrap();
        let d = arch.distance_matrix();
        assert_eq!(d[0][3], 3);
        assert_eq!(d[3][0], 3);
        assert_eq!(d[2][2], 0);
    }

    #[test]
    fn distance_matrix_disconnected() {
        let mut b = Architecture::builder("disc");
        b.qubit(0, 0).qubit(5, 5);
        let arch = b.build().unwrap();
        assert!(!arch.is_connected());
        assert_eq!(arch.distance_matrix()[0][1], u32::MAX);
    }

    #[test]
    fn center_qubit_of_grid() {
        let arch = grid(3, 3).build().unwrap();
        // Centroid is (1, 1) = qubit 4.
        assert_eq!(arch.center_qubit(), 4);
    }

    #[test]
    fn ball_radius() {
        let arch = grid(1, 5).build().unwrap();
        assert_eq!(arch.ball(2, 1), vec![1, 2, 3]);
        assert_eq!(arch.ball(0, 2), vec![0, 1, 2]);
        assert_eq!(arch.ball(0, 0), vec![0]);
    }

    #[test]
    fn frequency_plan_attachment() {
        let arch = grid(1, 2).build().unwrap();
        let err = arch.clone().with_frequencies(FrequencyPlan::new(vec![5.1])).unwrap_err();
        assert!(matches!(err, TopologyError::FrequencyPlanSize { provided: 1, qubits: 2 }));
        let err = arch.clone().with_frequencies(FrequencyPlan::new(vec![5.1, 4.0])).unwrap_err();
        assert!(matches!(err, TopologyError::FrequencyOutOfBand { qubit: 1, .. }));
        let ok = arch.with_frequencies(FrequencyPlan::new(vec![5.1, 5.2])).unwrap();
        assert_eq!(ok.frequencies().unwrap().ghz(0), 5.1);
    }

    #[test]
    fn qubit_lookup() {
        let arch = grid(2, 2).build().unwrap();
        assert_eq!(arch.qubit_at(Coord::new(1, 1)), Some(3));
        assert_eq!(arch.qubit_at(Coord::new(9, 9)), None);
    }

    #[test]
    fn renamed_keeps_structure() {
        let arch = grid(2, 2).build().unwrap().renamed("other");
        assert_eq!(arch.name(), "other");
        assert_eq!(arch.num_qubits(), 4);
    }
}
