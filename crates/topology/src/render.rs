//! ASCII rendering of chip architectures (textual Figure 9).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::architecture::Architecture;
use crate::coord::Coord;
use crate::freq::FIVE_FREQUENCIES_GHZ;

/// Renders an architecture as ASCII art.
///
/// Qubits are drawn as `[f]` where `f` is the 1-based index of the
/// qubit's frequency among the five standard frequencies (or `q` when a
/// qubit has a non-standard frequency, `.` when no plan is attached).
/// Horizontal/vertical bars are buses; a `#` in a square's center marks a
/// 4-qubit bus (whose diagonals are implied).
pub fn ascii(arch: &Architecture) -> String {
    let min_row = arch.coords().iter().map(|c| c.row).min().expect("non-empty");
    let max_row = arch.coords().iter().map(|c| c.row).max().expect("non-empty");
    let min_col = arch.coords().iter().map(|c| c.col).min().expect("non-empty");
    let max_col = arch.coords().iter().map(|c| c.col).max().expect("non-empty");

    let squares: BTreeSet<Coord> = arch.four_qubit_buses().iter().map(|s| s.origin).collect();

    let glyph = |q: usize| -> char {
        match arch.frequencies() {
            None => '.',
            Some(plan) => {
                let f = plan.ghz(q);
                FIVE_FREQUENCIES_GHZ
                    .iter()
                    .position(|&std| (std - f).abs() < 5e-3)
                    .map(|i| char::from_digit(i as u32 + 1, 10).expect("single digit"))
                    .unwrap_or('q')
            }
        }
    };

    let mut out = String::new();
    let _ =
        writeln!(out, "{} ({} qubits, {} buses)", arch.name(), arch.num_qubits(), arch.bus_count());
    for row in min_row..=max_row {
        // Qubit row.
        for col in min_col..=max_col {
            let here = Coord::new(row, col);
            match arch.qubit_at(here) {
                Some(q) => {
                    let _ = write!(out, "[{}]", glyph(q));
                }
                None => out.push_str("   "),
            }
            if col < max_col {
                let right = Coord::new(row, col + 1);
                let connected =
                    matches!((arch.qubit_at(here), arch.qubit_at(right)), (Some(_), Some(_)));
                out.push_str(if connected { "--" } else { "  " });
            }
        }
        out.push('\n');
        // Connector row.
        if row < max_row {
            for col in min_col..=max_col {
                let here = Coord::new(row, col);
                let below = Coord::new(row + 1, col);
                let connected =
                    matches!((arch.qubit_at(here), arch.qubit_at(below)), (Some(_), Some(_)));
                out.push_str(if connected { " | " } else { "   " });
                if col < max_col {
                    out.push_str(if squares.contains(&Coord::new(row, col)) { "# " } else { "  " });
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::{Architecture, BusMode};
    use crate::ibm;

    #[test]
    fn renders_grid_with_buses() {
        let art = ascii(&ibm::ibm_16q_2x8(BusMode::MaxFourQubit));
        assert!(art.contains("[3]--[4]"));
        assert!(art.contains('#'));
        // Two qubit rows and one connector row.
        assert_eq!(art.lines().count(), 4);
    }

    #[test]
    fn renders_unplanned_architecture_with_dots() {
        let mut b = Architecture::builder("bare");
        b.qubit(0, 0).qubit(0, 1);
        let art = ascii(&b.build().unwrap());
        assert!(art.contains("[.]--[.]"));
    }

    #[test]
    fn gaps_break_connections() {
        let mut b = Architecture::builder("gap");
        b.qubit(0, 0).qubit(0, 2);
        let art = ascii(&b.build().unwrap());
        assert!(!art.contains("--"));
    }

    #[test]
    fn four_qubit_bus_count_marker() {
        let art = ascii(&ibm::ibm_20q_4x5(BusMode::MaxFourQubit));
        assert_eq!(art.matches('#').count(), 6);
    }
}
