//! IBM's general-purpose baseline architectures (paper Figure 9), plus
//! the heavy-hexagon lattice family.
//!
//! Four dense-lattice designs: {16 qubits on 2×8, 20 qubits on 4×5} ×
//! {2-qubit buses only, maximum non-adjacent 4-qubit buses}, each
//! carrying the 5-frequency scheme in the arrangement the figure shows —
//! and [`heavy_hex`], the degree-3 lattice (Bunyk et al.,
//! arXiv:1401.5504 lineage) backing the `HeavyHex` hardware family.

use crate::architecture::{Architecture, BusMode};
use crate::freq::{
    pattern_frequency_plan, FrequencyPlan, FIVE_FREQUENCIES_GHZ, HEAVY_HEX_BAND_GHZ,
    HEAVY_HEX_FREQUENCIES_GHZ,
};

/// The 16-qubit 2×8 baseline (Figure 9 (1)/(2)).
///
/// With [`BusMode::MaxFourQubit`] the four squares at columns 0, 2, 4, 6
/// carry 4-qubit buses — the densest packing the prohibited condition
/// allows, matching "the 16-qubit baseline with four 4-qubit buses"
/// (§5.3).
pub fn ibm_16q_2x8(mode: BusMode) -> Architecture {
    let name = match mode {
        BusMode::TwoQubitOnly => "ibm-16q-2x8-2qbus",
        BusMode::MaxFourQubit => "ibm-16q-2x8-4qbus",
    };
    let mut b = Architecture::builder(name);
    for r in 0..2 {
        for c in 0..8 {
            b.qubit(r, c);
        }
    }
    if mode == BusMode::MaxFourQubit {
        for c in [0, 2, 4, 6] {
            b.four_qubit_bus(0, c);
        }
    }
    let arch = b.build().expect("baseline 2x8 is valid by construction");
    // Figure 9: row 0 reads frequency indices 3 4 5 1 2 3 4 5, row 1 reads
    // 1 2 3 4 5 1 2 3 (1-based).
    let plan: FrequencyPlan = (0..2i32)
        .flat_map(|r| (0..8i32).map(move |c| (r, c)))
        .map(|(r, c)| {
            let idx = (c + 2 - 2 * r).rem_euclid(5) as usize;
            FIVE_FREQUENCIES_GHZ[idx]
        })
        .collect();
    arch.with_frequencies(plan).expect("baseline frequencies are in band")
}

/// The 20-qubit 4×5 baseline (Figure 9 (3)/(4)).
///
/// With [`BusMode::MaxFourQubit`] six squares in a checkerboard pattern
/// carry 4-qubit buses, matching "IBM's 20-qubit chip design with six
/// 4-qubit buses" (§5.3).
pub fn ibm_20q_4x5(mode: BusMode) -> Architecture {
    let name = match mode {
        BusMode::TwoQubitOnly => "ibm-20q-4x5-2qbus",
        BusMode::MaxFourQubit => "ibm-20q-4x5-4qbus",
    };
    let mut b = Architecture::builder(name);
    for r in 0..4 {
        for c in 0..5 {
            b.qubit(r, c);
        }
    }
    if mode == BusMode::MaxFourQubit {
        for (r, c) in [(0, 0), (0, 2), (1, 1), (1, 3), (2, 0), (2, 2)] {
            b.four_qubit_bus(r, c);
        }
    }
    let arch = b.build().expect("baseline 4x5 is valid by construction");
    // Figure 9: rows read 1 2 3 4 5 / 3 4 5 1 2 / 5 1 2 3 4 / 2 3 4 5 1.
    let plan: FrequencyPlan = (0..4i32)
        .flat_map(|r| (0..5i32).map(move |c| (r, c)))
        .map(|(r, c)| {
            let idx = (2 * r + c).rem_euclid(5) as usize;
            FIVE_FREQUENCIES_GHZ[idx]
        })
        .collect();
    arch.with_frequencies(plan).expect("baseline frequencies are in band")
}

/// A heavy-hexagon lattice of `cells_down × cells_across` hexagon cells.
///
/// The layout is IBM's degree-3 pattern: full qubit rows on even lattice
/// rows (`4 * cells_across + 1` qubits each), joined by *bridge* qubits
/// on the odd rows — at columns `c ≡ 0 (mod 4)` under even-indexed
/// bridge rows and `c ≡ 2 (mod 4)` under odd-indexed ones, so adjacent
/// cell rows are offset by half a hexagon. Every qubit has at most three
/// neighbors (row qubits: two row neighbors plus at most one bridge;
/// bridges: exactly the two row qubits above and below), which is what
/// lets the attached 3-frequency pattern
/// ([`crate::HEAVY_HEX_FREQUENCIES_GHZ`], tiled by the same `(2r + c)`
/// rule as the 5-frequency scheme) keep every coupled pair
/// non-degenerate. The plan lives in [`HEAVY_HEX_BAND_GHZ`].
///
/// There are no 4-qubit buses: the square upgrade is a dense-lattice
/// device, and the heavy-hex family's whole point is sparse coupling.
///
/// # Panics
///
/// Panics if either cell count is zero.
pub fn heavy_hex(cells_down: usize, cells_across: usize) -> Architecture {
    assert!(cells_down > 0 && cells_across > 0, "need at least one hexagon cell");
    let cols = 4 * cells_across as i32 + 1;
    let mut b = Architecture::builder(format!("ibm-hh-{cells_down}x{cells_across}"));
    for row_idx in 0..=cells_down as i32 {
        for c in 0..cols {
            b.qubit(2 * row_idx, c);
        }
    }
    for bridge_idx in 0..cells_down as i32 {
        let phase = if bridge_idx % 2 == 0 { 0 } else { 2 };
        for c in (phase..cols).step_by(4) {
            b.qubit(2 * bridge_idx + 1, c);
        }
    }
    let arch = b.build().expect("heavy-hex lattice is valid by construction");
    let plan = pattern_frequency_plan(&arch, &HEAVY_HEX_FREQUENCIES_GHZ);
    arch.with_frequencies_in_band(plan, HEAVY_HEX_BAND_GHZ)
        .expect("heavy-hex frequencies are in the heavy-hex band")
}

/// All four baselines in Figure 9 order: (1) 16Q 2-qubit bus, (2) 16Q
/// 4-qubit buses, (3) 20Q 2-qubit bus, (4) 20Q 4-qubit buses.
pub fn all_baselines() -> [Architecture; 4] {
    [
        ibm_16q_2x8(BusMode::TwoQubitOnly),
        ibm_16q_2x8(BusMode::MaxFourQubit),
        ibm_20q_4x5(BusMode::TwoQubitOnly),
        ibm_20q_4x5(BusMode::MaxFourQubit),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_qubit_counts() {
        let plain = ibm_16q_2x8(BusMode::TwoQubitOnly);
        assert_eq!(plain.num_qubits(), 16);
        // 2x8 grid: 7 horizontal * 2 + 8 vertical = 22 edges.
        assert_eq!(plain.coupling_edges().len(), 22);
        assert!(plain.four_qubit_buses().is_empty());
        assert!(plain.is_connected());

        let dense = ibm_16q_2x8(BusMode::MaxFourQubit);
        assert_eq!(dense.four_qubit_buses().len(), 4);
        // 22 lattice edges + 2 diagonals per square.
        assert_eq!(dense.coupling_edges().len(), 30);
        assert!(dense.is_connected());
    }

    #[test]
    fn twenty_qubit_counts() {
        let plain = ibm_20q_4x5(BusMode::TwoQubitOnly);
        assert_eq!(plain.num_qubits(), 20);
        // 4x5 grid: 4 rows * 4 horizontal + 3 * 5 vertical = 31 edges.
        assert_eq!(plain.coupling_edges().len(), 31);

        let dense = ibm_20q_4x5(BusMode::MaxFourQubit);
        assert_eq!(dense.four_qubit_buses().len(), 6);
        assert_eq!(dense.coupling_edges().len(), 31 + 12);
        assert!(dense.is_connected());
    }

    #[test]
    fn paper_mentions_37_connections_for_20q() {
        // §1: IBM's latest published chip has 20 qubits with 37 qubit
        // connections — 31 lattice edges + 6 extra from the bus layout.
        // Our max-bus variant has 43 coupling edges but 31 + 6 = 37 buses.
        let dense = ibm_20q_4x5(BusMode::MaxFourQubit);
        // 31 lattice edges, 24 of which are sides of the 6 squares:
        // 7 two-qubit buses + 6 four-qubit buses.
        assert_eq!(dense.two_qubit_buses().len(), 7);
        assert_eq!(dense.bus_count(), 13);
    }

    #[test]
    fn frequencies_match_figure9_16q() {
        let arch = ibm_16q_2x8(BusMode::TwoQubitOnly);
        let plan = arch.frequencies().unwrap();
        let row0: Vec<f64> = (0..8).map(|q| plan.ghz(q)).collect();
        let row1: Vec<f64> = (8..16).map(|q| plan.ghz(q)).collect();
        let f = |i: usize| FIVE_FREQUENCIES_GHZ[i - 1];
        assert_eq!(row0, vec![f(3), f(4), f(5), f(1), f(2), f(3), f(4), f(5)]);
        assert_eq!(row1, vec![f(1), f(2), f(3), f(4), f(5), f(1), f(2), f(3)]);
    }

    #[test]
    fn frequencies_match_figure9_20q() {
        let arch = ibm_20q_4x5(BusMode::TwoQubitOnly);
        let plan = arch.frequencies().unwrap();
        let f = |i: usize| FIVE_FREQUENCIES_GHZ[i - 1];
        let expected = [
            [f(1), f(2), f(3), f(4), f(5)],
            [f(3), f(4), f(5), f(1), f(2)],
            [f(5), f(1), f(2), f(3), f(4)],
            [f(2), f(3), f(4), f(5), f(1)],
        ];
        for q in 0..20 {
            assert_eq!(plan.ghz(q), expected[q / 5][q % 5], "qubit {q}");
        }
    }

    #[test]
    fn heavy_hex_counts_and_degrees() {
        let hh = heavy_hex(2, 2);
        // 3 full rows of 9 qubits + bridge rows of 3 (c = 0, 4, 8) and
        // 2 (c = 2, 6).
        assert_eq!(hh.num_qubits(), 3 * 9 + 3 + 2);
        assert!(hh.is_connected());
        assert!(hh.four_qubit_buses().is_empty());
        for q in 0..hh.num_qubits() {
            let deg = hh.neighbors(q).len();
            assert!(deg <= 3, "qubit {q} has degree {deg} > 3");
            if hh.coord(q).row % 2 == 1 {
                assert_eq!(deg, 2, "bridge {q} must join exactly two rows");
            }
        }
        // Two degree-3 row qubits per *interior* bridge (a bridge at a
        // row end joins two degree-2 corner qubits instead).
        let interior_bridges = (0..hh.num_qubits())
            .filter(|&q| {
                let c = hh.coord(q);
                c.row % 2 == 1 && c.col != 0 && c.col != 8
            })
            .count();
        let degree3 = (0..hh.num_qubits()).filter(|&q| hh.neighbors(q).len() == 3).count();
        assert_eq!(degree3, 2 * interior_bridges);
    }

    #[test]
    fn heavy_hex_coords_follow_the_offset_pattern() {
        let hh = heavy_hex(3, 1);
        for q in 0..hh.num_qubits() {
            let c = hh.coord(q);
            if c.row % 2 == 0 {
                assert!((0..=4).contains(&c.col), "row qubit off the row: {c:?}");
            } else {
                let phase = if (c.row / 2) % 2 == 0 { 0 } else { 2 };
                assert_eq!(c.col.rem_euclid(4), phase, "bridge column off-phase: {c:?}");
            }
        }
    }

    #[test]
    fn heavy_hex_frequencies_are_in_band_and_non_degenerate() {
        let hh = heavy_hex(2, 3);
        let plan = hh.frequencies().expect("heavy-hex ships a plan");
        assert!(plan.check_band_within(crate::freq::HEAVY_HEX_BAND_GHZ).is_ok());
        for &(a, b) in hh.coupling_edges() {
            assert!(
                (plan.ghz(a) - plan.ghz(b)).abs() > 1e-9,
                "coupled pair {a},{b} is frequency-degenerate"
            );
        }
    }

    #[test]
    fn heavy_hex_render_round_trip() {
        // The ASCII rendering is deterministic and draws every qubit
        // (heavy-hex frequencies are off the 5-frequency menu, so each
        // qubit renders as the generic `[q]` glyph).
        let hh = heavy_hex(1, 1);
        let art = crate::render::ascii(&hh);
        assert_eq!(art, crate::render::ascii(&heavy_hex(1, 1)), "render not deterministic");
        assert!(art.starts_with("ibm-hh-1x1 "));
        assert_eq!(art.matches("[q]").count(), hh.num_qubits());
        assert!(!art.contains('#'), "heavy-hex must carry no 4-qubit buses");
    }

    #[test]
    fn all_baselines_ordered() {
        let archs = all_baselines();
        assert_eq!(archs[0].name(), "ibm-16q-2x8-2qbus");
        assert_eq!(archs[3].name(), "ibm-20q-4x5-4qbus");
        for a in &archs {
            assert!(a.is_connected());
            assert!(a.frequencies().is_some());
        }
    }
}
