//! IBM's general-purpose baseline architectures (paper Figure 9).
//!
//! Four designs: {16 qubits on 2×8, 20 qubits on 4×5} × {2-qubit buses
//! only, maximum non-adjacent 4-qubit buses}, each carrying the
//! 5-frequency scheme in the arrangement the figure shows.

use crate::architecture::{Architecture, BusMode};
use crate::freq::{FrequencyPlan, FIVE_FREQUENCIES_GHZ};

/// The 16-qubit 2×8 baseline (Figure 9 (1)/(2)).
///
/// With [`BusMode::MaxFourQubit`] the four squares at columns 0, 2, 4, 6
/// carry 4-qubit buses — the densest packing the prohibited condition
/// allows, matching "the 16-qubit baseline with four 4-qubit buses"
/// (§5.3).
pub fn ibm_16q_2x8(mode: BusMode) -> Architecture {
    let name = match mode {
        BusMode::TwoQubitOnly => "ibm-16q-2x8-2qbus",
        BusMode::MaxFourQubit => "ibm-16q-2x8-4qbus",
    };
    let mut b = Architecture::builder(name);
    for r in 0..2 {
        for c in 0..8 {
            b.qubit(r, c);
        }
    }
    if mode == BusMode::MaxFourQubit {
        for c in [0, 2, 4, 6] {
            b.four_qubit_bus(0, c);
        }
    }
    let arch = b.build().expect("baseline 2x8 is valid by construction");
    // Figure 9: row 0 reads frequency indices 3 4 5 1 2 3 4 5, row 1 reads
    // 1 2 3 4 5 1 2 3 (1-based).
    let plan: FrequencyPlan = (0..2i32)
        .flat_map(|r| (0..8i32).map(move |c| (r, c)))
        .map(|(r, c)| {
            let idx = (c + 2 - 2 * r).rem_euclid(5) as usize;
            FIVE_FREQUENCIES_GHZ[idx]
        })
        .collect();
    arch.with_frequencies(plan).expect("baseline frequencies are in band")
}

/// The 20-qubit 4×5 baseline (Figure 9 (3)/(4)).
///
/// With [`BusMode::MaxFourQubit`] six squares in a checkerboard pattern
/// carry 4-qubit buses, matching "IBM's 20-qubit chip design with six
/// 4-qubit buses" (§5.3).
pub fn ibm_20q_4x5(mode: BusMode) -> Architecture {
    let name = match mode {
        BusMode::TwoQubitOnly => "ibm-20q-4x5-2qbus",
        BusMode::MaxFourQubit => "ibm-20q-4x5-4qbus",
    };
    let mut b = Architecture::builder(name);
    for r in 0..4 {
        for c in 0..5 {
            b.qubit(r, c);
        }
    }
    if mode == BusMode::MaxFourQubit {
        for (r, c) in [(0, 0), (0, 2), (1, 1), (1, 3), (2, 0), (2, 2)] {
            b.four_qubit_bus(r, c);
        }
    }
    let arch = b.build().expect("baseline 4x5 is valid by construction");
    // Figure 9: rows read 1 2 3 4 5 / 3 4 5 1 2 / 5 1 2 3 4 / 2 3 4 5 1.
    let plan: FrequencyPlan = (0..4i32)
        .flat_map(|r| (0..5i32).map(move |c| (r, c)))
        .map(|(r, c)| {
            let idx = (2 * r + c).rem_euclid(5) as usize;
            FIVE_FREQUENCIES_GHZ[idx]
        })
        .collect();
    arch.with_frequencies(plan).expect("baseline frequencies are in band")
}

/// All four baselines in Figure 9 order: (1) 16Q 2-qubit bus, (2) 16Q
/// 4-qubit buses, (3) 20Q 2-qubit bus, (4) 20Q 4-qubit buses.
pub fn all_baselines() -> [Architecture; 4] {
    [
        ibm_16q_2x8(BusMode::TwoQubitOnly),
        ibm_16q_2x8(BusMode::MaxFourQubit),
        ibm_20q_4x5(BusMode::TwoQubitOnly),
        ibm_20q_4x5(BusMode::MaxFourQubit),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_qubit_counts() {
        let plain = ibm_16q_2x8(BusMode::TwoQubitOnly);
        assert_eq!(plain.num_qubits(), 16);
        // 2x8 grid: 7 horizontal * 2 + 8 vertical = 22 edges.
        assert_eq!(plain.coupling_edges().len(), 22);
        assert!(plain.four_qubit_buses().is_empty());
        assert!(plain.is_connected());

        let dense = ibm_16q_2x8(BusMode::MaxFourQubit);
        assert_eq!(dense.four_qubit_buses().len(), 4);
        // 22 lattice edges + 2 diagonals per square.
        assert_eq!(dense.coupling_edges().len(), 30);
        assert!(dense.is_connected());
    }

    #[test]
    fn twenty_qubit_counts() {
        let plain = ibm_20q_4x5(BusMode::TwoQubitOnly);
        assert_eq!(plain.num_qubits(), 20);
        // 4x5 grid: 4 rows * 4 horizontal + 3 * 5 vertical = 31 edges.
        assert_eq!(plain.coupling_edges().len(), 31);

        let dense = ibm_20q_4x5(BusMode::MaxFourQubit);
        assert_eq!(dense.four_qubit_buses().len(), 6);
        assert_eq!(dense.coupling_edges().len(), 31 + 12);
        assert!(dense.is_connected());
    }

    #[test]
    fn paper_mentions_37_connections_for_20q() {
        // §1: IBM's latest published chip has 20 qubits with 37 qubit
        // connections — 31 lattice edges + 6 extra from the bus layout.
        // Our max-bus variant has 43 coupling edges but 31 + 6 = 37 buses.
        let dense = ibm_20q_4x5(BusMode::MaxFourQubit);
        // 31 lattice edges, 24 of which are sides of the 6 squares:
        // 7 two-qubit buses + 6 four-qubit buses.
        assert_eq!(dense.two_qubit_buses().len(), 7);
        assert_eq!(dense.bus_count(), 13);
    }

    #[test]
    fn frequencies_match_figure9_16q() {
        let arch = ibm_16q_2x8(BusMode::TwoQubitOnly);
        let plan = arch.frequencies().unwrap();
        let row0: Vec<f64> = (0..8).map(|q| plan.ghz(q)).collect();
        let row1: Vec<f64> = (8..16).map(|q| plan.ghz(q)).collect();
        let f = |i: usize| FIVE_FREQUENCIES_GHZ[i - 1];
        assert_eq!(row0, vec![f(3), f(4), f(5), f(1), f(2), f(3), f(4), f(5)]);
        assert_eq!(row1, vec![f(1), f(2), f(3), f(4), f(5), f(1), f(2), f(3)]);
    }

    #[test]
    fn frequencies_match_figure9_20q() {
        let arch = ibm_20q_4x5(BusMode::TwoQubitOnly);
        let plan = arch.frequencies().unwrap();
        let f = |i: usize| FIVE_FREQUENCIES_GHZ[i - 1];
        let expected = [
            [f(1), f(2), f(3), f(4), f(5)],
            [f(3), f(4), f(5), f(1), f(2)],
            [f(5), f(1), f(2), f(3), f(4)],
            [f(2), f(3), f(4), f(5), f(1)],
        ];
        for q in 0..20 {
            assert_eq!(plan.ghz(q), expected[q / 5][q % 5], "qubit {q}");
        }
    }

    #[test]
    fn all_baselines_ordered() {
        let archs = all_baselines();
        assert_eq!(archs[0].name(), "ibm-16q-2x8-2qbus");
        assert_eq!(archs[3].name(), "ibm-20q-4x5-4qbus");
        for a in &archs {
            assert!(a.is_connected());
            assert!(a.frequencies().is_some());
        }
    }
}
