//! Superconducting quantum processor topology model.
//!
//! Models the hardware architecture space of the paper (§2.2 and §4):
//! physical qubits on the nodes of a 2D lattice, connected by 2-qubit
//! buses (every occupied lattice edge) which can be upgraded, square by
//! square, to 4-qubit buses that also couple the square's diagonals.
//! Two 4-qubit buses may never occupy edge-adjacent squares (the
//! *prohibited condition*, Figure 7 (a)) — [`Architecture`] construction
//! enforces this.
//!
//! The crate also carries qubit frequency plans ([`FrequencyPlan`]), the
//! allowed 5.00–5.34 GHz band, IBM's 5-frequency scheme, and the four
//! general-purpose IBM baseline architectures of Figure 9 ([`ibm`]).
//!
//! ```
//! use qpd_topology::{Architecture, BusMode, ibm};
//!
//! let chip = ibm::ibm_20q_4x5(BusMode::MaxFourQubit);
//! assert_eq!(chip.num_qubits(), 20);
//! assert_eq!(chip.four_qubit_buses().len(), 6);
//! assert!(chip.is_connected());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod architecture;
pub mod coord;
pub mod error;
pub mod format;
pub mod freq;
pub mod ibm;
pub mod render;

pub use architecture::{Architecture, ArchitectureBuilder, BusMode, Square};
pub use coord::Coord;
pub use error::TopologyError;
pub use freq::{
    five_frequency_plan, pattern_frequency_plan, FrequencyPlan, ALLOWED_BAND_GHZ,
    FIVE_FREQUENCIES_GHZ, HEAVY_HEX_BAND_GHZ, HEAVY_HEX_FREQUENCIES_GHZ, TUNABLE_COUPLER_BAND_GHZ,
    TUNABLE_COUPLER_FREQUENCIES_GHZ,
};
