//! 2D lattice coordinates.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A node of the 2D lattice on which physical qubits are placed.
///
/// Coordinates are signed so the placement algorithm (paper §4.1) can grow
/// a layout in every direction from its seed at `(0, 0)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Row (y) coordinate.
    pub row: i32,
    /// Column (x) coordinate.
    pub col: i32,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(row: i32, col: i32) -> Self {
        Coord { row, col }
    }

    /// Manhattan distance to `other`, the lattice routing metric used by
    /// the placement cost function (paper Algorithm 1, line 13).
    pub fn manhattan(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// The four edge-adjacent lattice nodes (N, S, W, E).
    pub fn neighbors4(self) -> [Coord; 4] {
        [
            Coord::new(self.row - 1, self.col),
            Coord::new(self.row + 1, self.col),
            Coord::new(self.row, self.col - 1),
            Coord::new(self.row, self.col + 1),
        ]
    }

    /// Whether `other` is edge-adjacent on the lattice.
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }

    /// Whether `other` is diagonally adjacent (shares a unit square corner
    /// but not an edge).
    pub fn is_diagonal(self, other: Coord) -> bool {
        self.row.abs_diff(other.row) == 1 && self.col.abs_diff(other.col) == 1
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

impl From<(i32, i32)> for Coord {
    fn from((row, col): (i32, i32)) -> Self {
        Coord::new(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(2, -3)), 5);
        assert_eq!(Coord::new(1, 1).manhattan(Coord::new(1, 1)), 0);
    }

    #[test]
    fn adjacency() {
        let c = Coord::new(0, 0);
        assert!(c.is_adjacent(Coord::new(0, 1)));
        assert!(c.is_adjacent(Coord::new(-1, 0)));
        assert!(!c.is_adjacent(Coord::new(1, 1)));
        assert!(!c.is_adjacent(c));
    }

    #[test]
    fn diagonal() {
        let c = Coord::new(0, 0);
        assert!(c.is_diagonal(Coord::new(1, 1)));
        assert!(c.is_diagonal(Coord::new(-1, 1)));
        assert!(!c.is_diagonal(Coord::new(0, 1)));
        assert!(!c.is_diagonal(Coord::new(2, 1)));
    }

    #[test]
    fn neighbors_are_adjacent() {
        let c = Coord::new(3, -2);
        for n in c.neighbors4() {
            assert!(c.is_adjacent(n));
        }
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Coord::from((1, 2)).to_string(), "(1, 2)");
    }
}
