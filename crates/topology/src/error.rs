//! Error type for architecture construction and validation.

use std::error::Error;
use std::fmt;

use crate::coord::Coord;

/// Error constructing or validating an [`Architecture`](crate::Architecture).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// Two qubits were placed on the same lattice node.
    DuplicateCoord {
        /// The contested node.
        coord: Coord,
    },
    /// The architecture has no qubits.
    Empty,
    /// A 4-qubit bus square has fewer than three placed qubits on its
    /// corners, so it cannot function even as a 3-qubit bus.
    SquareTooEmpty {
        /// Square origin (its minimum-row, minimum-col corner).
        origin: Coord,
        /// Number of occupied corners found.
        occupied: usize,
    },
    /// The same square was selected twice for a 4-qubit bus.
    DuplicateSquare {
        /// Square origin.
        origin: Coord,
    },
    /// Two 4-qubit buses occupy edge-adjacent squares — the prohibited
    /// condition of paper Figure 7 (a) (it would create a double
    /// connection between two qubits).
    AdjacentFourQubitBuses {
        /// First square origin.
        a: Coord,
        /// Second, adjacent square origin.
        b: Coord,
    },
    /// A frequency plan's length does not match the qubit count.
    FrequencyPlanSize {
        /// Frequencies provided.
        provided: usize,
        /// Qubits in the architecture.
        qubits: usize,
    },
    /// A designed frequency lies outside the allowed 5.00–5.34 GHz band
    /// (paper §4.3 fixes this interval to suppress collision condition 4).
    FrequencyOutOfBand {
        /// Qubit index.
        qubit: usize,
        /// Offending frequency in GHz.
        ghz: f64,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateCoord { coord } => {
                write!(f, "two qubits placed on the same lattice node {coord}")
            }
            TopologyError::Empty => write!(f, "architecture has no qubits"),
            TopologyError::SquareTooEmpty { origin, occupied } => write!(
                f,
                "square at {origin} has only {occupied} placed qubit(s); a 4-qubit bus needs at least 3"
            ),
            TopologyError::DuplicateSquare { origin } => {
                write!(f, "square at {origin} selected twice for a 4-qubit bus")
            }
            TopologyError::AdjacentFourQubitBuses { a, b } => write!(
                f,
                "4-qubit buses at {a} and {b} are edge-adjacent (prohibited condition)"
            ),
            TopologyError::FrequencyPlanSize { provided, qubits } => write!(
                f,
                "frequency plan has {provided} entries for an architecture with {qubits} qubits"
            ),
            TopologyError::FrequencyOutOfBand { qubit, ghz } => write!(
                f,
                "qubit {qubit} designed at {ghz} GHz, outside the allowed 5.00-5.34 GHz band"
            ),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = TopologyError::AdjacentFourQubitBuses { a: Coord::new(0, 0), b: Coord::new(0, 1) };
        assert!(e.to_string().contains("prohibited"));
        let e = TopologyError::FrequencyOutOfBand { qubit: 3, ghz: 4.9 };
        assert!(e.to_string().contains("4.9"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TopologyError>();
    }
}
