//! Gate-pattern analysis (paper §3.2 and §5.3.1/§5.4.2).
//!
//! The paper observes that coupling patterns differ sharply across
//! programs — chains (UCCSD, Ising), uniform all-to-all coupling (QFT),
//! hub-shaped reversible arithmetic (misex1) — and that these shapes
//! predict how much an application-specific architecture can save. This
//! module classifies a [`CouplingProfile`] into those shapes.

use serde::{Deserialize, Serialize};

use crate::coupling::CouplingProfile;

/// Coarse classification of a program's logical coupling graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PatternShape {
    /// No two-qubit gates at all.
    Empty,
    /// The coupling graph is a simple path. Carries the qubit order along
    /// the path. The paper's `ising_model` benchmark is the canonical
    /// example (§5.3.1): a chain maps perfectly onto a 2D lattice and
    /// gains nothing from 4-qubit buses.
    Chain(Vec<usize>),
    /// Every qubit pair is coupled with identical weight, like `qft`
    /// (§5.4.2), where weight-based bus selection degenerates to random.
    UniformComplete {
        /// The common pair weight.
        weight: u32,
    },
    /// None of the special shapes.
    Irregular,
}

/// Summary statistics of a coupling pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternReport {
    /// Detected shape.
    pub shape: PatternShape,
    /// Edge density: coupled pairs / all pairs.
    pub density: f64,
    /// Gini-style concentration: fraction of total coupling weight carried
    /// by the heaviest 20% of edges (1.0 = fully concentrated).
    pub top_quintile_weight_share: f64,
    /// Qubits whose coupling degree is more than twice the median degree —
    /// "hub" qubits that deserve central placement.
    pub hubs: Vec<usize>,
}

impl PatternReport {
    /// Analyzes a profile.
    pub fn of(profile: &CouplingProfile) -> Self {
        PatternReport {
            shape: detect_shape(profile),
            density: density(profile),
            top_quintile_weight_share: top_quintile_weight_share(profile),
            hubs: hubs(profile),
        }
    }
}

/// Detects the coupling-graph shape.
pub fn detect_shape(profile: &CouplingProfile) -> PatternShape {
    let n = profile.num_qubits();
    let edges = profile.edges();
    if edges.is_empty() {
        return PatternShape::Empty;
    }

    // Uniform complete graph? (k = 2 is classified as a chain below, the
    // more useful label for the design flow.)
    let active: Vec<usize> = (0..n).filter(|&q| profile.degree(q) > 0).collect();
    let k = active.len();
    if k >= 3 {
        let complete_edges = k * (k - 1) / 2;
        let w0 = edges[0].weight;
        if edges.len() == complete_edges && edges.iter().all(|e| e.weight == w0) {
            return PatternShape::UniformComplete { weight: w0 };
        }
    }

    // Chain? All active degrees (in the unweighted graph) <= 2, exactly two
    // endpoints of graph-degree 1, connected, and edge count k - 1.
    if profile.is_connected() && edges.len() == k.saturating_sub(1) {
        let graph_degree = |q: usize| -> usize { profile.neighbors(q).len() };
        let endpoints: Vec<usize> =
            active.iter().copied().filter(|&q| graph_degree(q) == 1).collect();
        let all_path = active.iter().all(|&q| graph_degree(q) <= 2);
        if all_path && (endpoints.len() == 2 || (k == 2 && endpoints.len() == 2)) {
            // Walk the path from one endpoint.
            let mut order = vec![endpoints[0]];
            let mut prev = usize::MAX;
            let mut cur = endpoints[0];
            while order.len() < k {
                let next = profile
                    .neighbors(cur)
                    .into_iter()
                    .find(|&j| j != prev)
                    .expect("path invariant");
                order.push(next);
                prev = cur;
                cur = next;
            }
            return PatternShape::Chain(order);
        }
    }
    PatternShape::Irregular
}

/// Edge density over all qubit pairs.
pub fn density(profile: &CouplingProfile) -> f64 {
    let n = profile.num_qubits();
    if n < 2 {
        return 0.0;
    }
    profile.edge_count() as f64 / (n * (n - 1) / 2) as f64
}

/// Fraction of the total coupling weight carried by the heaviest 20% of
/// edges (rounded up). Returns 0 for empty profiles.
pub fn top_quintile_weight_share(profile: &CouplingProfile) -> f64 {
    let mut weights: Vec<u32> = profile.edges().iter().map(|e| e.weight).collect();
    if weights.is_empty() {
        return 0.0;
    }
    weights.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let top = weights.len().div_ceil(5);
    let top_sum: u64 = weights[..top].iter().map(|&w| w as u64).sum();
    top_sum as f64 / total as f64
}

/// Qubits whose coupling degree exceeds twice the median positive degree.
pub fn hubs(profile: &CouplingProfile) -> Vec<usize> {
    let mut degrees: Vec<u32> =
        (0..profile.num_qubits()).map(|q| profile.degree(q)).filter(|&d| d > 0).collect();
    if degrees.is_empty() {
        return Vec::new();
    }
    degrees.sort_unstable();
    let median = degrees[degrees.len() / 2];
    (0..profile.num_qubits()).filter(|&q| profile.degree(q) > 2 * median).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile() {
        let p = CouplingProfile::from_edges(3, &[]);
        assert_eq!(detect_shape(&p), PatternShape::Empty);
        assert_eq!(density(&p), 0.0);
        assert_eq!(top_quintile_weight_share(&p), 0.0);
        assert!(hubs(&p).is_empty());
    }

    #[test]
    fn chain_detection() {
        let p = CouplingProfile::from_edges(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 9)]);
        match detect_shape(&p) {
            PatternShape::Chain(order) => {
                assert!(order == vec![0, 1, 2, 3] || order == vec![3, 2, 1, 0]);
            }
            other => panic!("expected chain, got {other:?}"),
        }
    }

    #[test]
    fn chain_with_isolated_qubit() {
        // Qubit 4 is unused; the rest form a chain.
        let p = CouplingProfile::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert!(matches!(detect_shape(&p), PatternShape::Chain(_)));
    }

    #[test]
    fn two_qubit_chain() {
        let p = CouplingProfile::from_edges(2, &[(0, 1, 5)]);
        assert!(matches!(detect_shape(&p), PatternShape::Chain(_)));
    }

    #[test]
    fn uniform_complete_detection() {
        // QFT-like: every pair coupled with equal weight.
        let edges: Vec<(usize, usize, u32)> =
            (0..4).flat_map(|a| ((a + 1)..4).map(move |b| (a, b, 2))).collect();
        let p = CouplingProfile::from_edges(4, &edges);
        assert_eq!(detect_shape(&p), PatternShape::UniformComplete { weight: 2 });
    }

    #[test]
    fn non_uniform_complete_is_irregular() {
        let edges = vec![(0, 1, 2), (0, 2, 2), (1, 2, 3)];
        let p = CouplingProfile::from_edges(3, &edges);
        assert_eq!(detect_shape(&p), PatternShape::Irregular);
    }

    #[test]
    fn star_is_irregular() {
        let p = CouplingProfile::from_edges(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]);
        assert_eq!(detect_shape(&p), PatternShape::Irregular);
    }

    #[test]
    fn cycle_is_irregular() {
        let p = CouplingProfile::from_edges(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        // A triangle is complete-uniform; use a 4-cycle instead.
        let p4 = CouplingProfile::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        assert_eq!(detect_shape(&p4), PatternShape::Irregular);
        assert_eq!(detect_shape(&p), PatternShape::UniformComplete { weight: 1 });
    }

    #[test]
    fn density_values() {
        let p = CouplingProfile::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        assert!((density(&p) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn weight_concentration() {
        // One heavy edge among five: top quintile carries most weight.
        let p = CouplingProfile::from_edges(
            6,
            &[(0, 1, 100), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1)],
        );
        assert!(top_quintile_weight_share(&p) > 0.9);
    }

    #[test]
    fn hub_detection() {
        // Qubit 0 participates in many more gates than the rest.
        let p = CouplingProfile::from_edges(
            5,
            &[(0, 1, 10), (0, 2, 10), (0, 3, 10), (0, 4, 10), (1, 2, 1)],
        );
        assert_eq!(hubs(&p), vec![0]);
    }

    #[test]
    fn report_composes() {
        let p = CouplingProfile::from_edges(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 9)]);
        let report = PatternReport::of(&p);
        assert!(matches!(report.shape, PatternShape::Chain(_)));
        assert!(report.density > 0.0);
    }
}
