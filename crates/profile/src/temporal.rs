//! Temporal (windowed) profiling.
//!
//! The paper's §6 ("Improving Profiling Method") notes that the plain
//! coupling strength matrix discards *when* two-qubit gates happen, and
//! suggests time-resolved coupling strength as future work. This module
//! implements that extension: the instruction stream is split into equal
//! windows and each window profiled independently, exposing how coupling
//! migrates over a program's lifetime.

use serde::{Deserialize, Serialize};

use qpd_circuit::Circuit;

use crate::coupling::CouplingProfile;

/// Per-window coupling profiles of a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalProfile {
    windows: Vec<CouplingProfile>,
}

impl TemporalProfile {
    /// Profiles `circuit` in `num_windows` equal slices of its two-qubit
    /// gate stream. Windows are by gate count (not depth), matching how
    /// the aggregate profiler weighs gates.
    ///
    /// # Panics
    ///
    /// Panics if `num_windows` is zero.
    pub fn of(circuit: &Circuit, num_windows: usize) -> Self {
        assert!(num_windows > 0, "need at least one window");
        let n = circuit.num_qubits();
        let pairs: Vec<_> = circuit.two_qubit_pairs().collect();
        let total = pairs.len();
        let mut windows = Vec::with_capacity(num_windows);
        for w in 0..num_windows {
            let start = total * w / num_windows;
            let end = total * (w + 1) / num_windows;
            let edges: Vec<(usize, usize, u32)> =
                pairs[start..end].iter().map(|(a, b)| (a.index(), b.index(), 1)).collect();
            windows.push(CouplingProfile::from_edges(n, &edges));
        }
        TemporalProfile { windows }
    }

    /// The per-window profiles in time order.
    pub fn windows(&self) -> &[CouplingProfile] {
        &self.windows
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether there are no windows (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Jaccard-style stability between consecutive windows' edge sets:
    /// 1.0 means the coupled pairs never change, 0.0 means they are
    /// disjoint in every transition. Programs with high stability benefit
    /// most from a static application-specific architecture.
    pub fn stability(&self) -> f64 {
        if self.windows.len() < 2 {
            return 1.0;
        }
        let sets: Vec<std::collections::BTreeSet<(u32, u32)>> = self
            .windows
            .iter()
            .map(|p| p.edges().iter().map(|e| (e.a.raw(), e.b.raw())).collect())
            .collect();
        let mut acc = 0.0;
        let mut transitions = 0;
        for pair in sets.windows(2) {
            let inter = pair[0].intersection(&pair[1]).count();
            let union = pair[0].union(&pair[1]).count();
            if union > 0 {
                acc += inter as f64 / union as f64;
                transitions += 1;
            }
        }
        if transitions == 0 {
            1.0
        } else {
            acc / transitions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_gates() {
        let mut c = Circuit::new(3);
        for _ in 0..4 {
            c.cx(0, 1);
        }
        for _ in 0..4 {
            c.cx(1, 2);
        }
        let t = TemporalProfile::of(&c, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.windows()[0].strength(0, 1), 4);
        assert_eq!(t.windows()[0].strength(1, 2), 0);
        assert_eq!(t.windows()[1].strength(1, 2), 4);
        // Aggregate equals the sum of windows.
        let total: u32 = t.windows().iter().map(|w| w.total_two_qubit_gates()).sum();
        assert_eq!(total, CouplingProfile::of(&c).total_two_qubit_gates());
    }

    #[test]
    fn stability_of_static_program() {
        let mut c = Circuit::new(2);
        for _ in 0..10 {
            c.cx(0, 1);
        }
        let t = TemporalProfile::of(&c, 5);
        assert!((t.stability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stability_of_migrating_program() {
        let mut c = Circuit::new(3);
        for _ in 0..5 {
            c.cx(0, 1);
        }
        for _ in 0..5 {
            c.cx(1, 2);
        }
        let t = TemporalProfile::of(&c, 2);
        assert_eq!(t.stability(), 0.0);
    }

    #[test]
    fn single_window_matches_aggregate() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 1);
        let t = TemporalProfile::of(&c, 1);
        assert_eq!(t.windows()[0], CouplingProfile::of(&c));
        assert_eq!(t.stability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_panics() {
        TemporalProfile::of(&Circuit::new(1), 0);
    }

    #[test]
    fn empty_circuit_windows() {
        let t = TemporalProfile::of(&Circuit::new(2), 3);
        assert_eq!(t.len(), 3);
        assert!(t.windows().iter().all(|w| w.total_two_qubit_gates() == 0));
    }
}
