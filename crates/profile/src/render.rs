//! Text rendering of profiling results (used to regenerate paper
//! Figures 4 and 5).

use std::fmt::Write as _;

use crate::coupling::CouplingProfile;

/// Renders the coupling strength matrix as an aligned text table, the
/// textual equivalent of the heat maps in paper Figure 5.
pub fn matrix_table(profile: &CouplingProfile) -> String {
    let n = profile.num_qubits();
    let width =
        profile.max_strength().to_string().len().max(n.saturating_sub(1).to_string().len()).max(1);
    let mut out = String::new();
    let _ = write!(out, "{:>w$} ", "", w = width + 1);
    for j in 0..n {
        let _ = write!(out, "{j:>width$} ");
    }
    out.push('\n');
    for i in 0..n {
        let _ = write!(out, "{i:>w$} ", w = width + 1);
        for j in 0..n {
            let v = profile.strength(i, j);
            if v == 0 {
                let _ = write!(out, "{:>width$} ", ".");
            } else {
                let _ = write!(out, "{v:>width$} ");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the coupling degree list as a two-column table (paper
/// Figure 4 (d)).
pub fn degree_table(profile: &CouplingProfile) -> String {
    let mut out = String::from("qubit  two-qubit gates\n");
    for (q, d) in profile.degree_list() {
        let _ = writeln!(out, "{:>5}  {:>15}", format!("q{}", q.index()), d);
    }
    out
}

/// Serializes the strength matrix as CSV (header row/column of qubit
/// indices included) for external plotting.
pub fn matrix_csv(profile: &CouplingProfile) -> String {
    let n = profile.num_qubits();
    let mut out = String::new();
    out.push_str("qubit");
    for j in 0..n {
        let _ = write!(out, ",{j}");
    }
    out.push('\n');
    for i in 0..n {
        let _ = write!(out, "{i}");
        for j in 0..n {
            let _ = write!(out, ",{}", profile.strength(i, j));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CouplingProfile {
        CouplingProfile::from_edges(3, &[(0, 1, 12), (1, 2, 1)])
    }

    #[test]
    fn matrix_table_shape() {
        let table = matrix_table(&profile());
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert!(lines[1].contains("12"));
        assert!(lines[1].contains('.')); // zero rendered as dot
    }

    #[test]
    fn degree_table_sorted() {
        let table = degree_table(&profile());
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[1].contains("q1")); // q1 has degree 13, listed first
        assert!(lines[1].contains("13"));
    }

    #[test]
    fn csv_roundtrips_values() {
        let csv = matrix_csv(&profile());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "qubit,0,1,2");
        assert_eq!(lines[1], "0,0,12,0");
        assert_eq!(lines[2], "1,12,0,1");
    }
}
