//! Architecture-design-oriented quantum program profiling.
//!
//! Implements §3 of *Towards Efficient Superconducting Quantum Processor
//! Architecture Design* (ASPLOS 2020). The profiler ignores single-qubit
//! gates, initialization, and measurement — none of which require on-chip
//! qubit connections — and extracts from the two-qubit gates:
//!
//! - the **coupling strength matrix** ([`CouplingProfile::strength`]): a
//!   symmetric matrix whose `(i, j)` entry counts the two-qubit gates
//!   between logical qubits `i` and `j`;
//! - the **coupling degree list** ([`CouplingProfile::degree_list`]): all
//!   qubits sorted by the number of two-qubit gates they participate in,
//!   descending.
//!
//! Both guide the hardware design flow in `qpd-core`: strongly coupled
//! qubit pairs get adjacent placements and, when beneficial, 4-qubit
//! buses.
//!
//! ```
//! use qpd_circuit::Circuit;
//! use qpd_profile::CouplingProfile;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).cx(0, 1).cx(1, 2).measure_all();
//! let profile = CouplingProfile::of(&c);
//! assert_eq!(profile.strength(0, 1), 2);
//! assert_eq!(profile.degree(1), 3);
//! assert_eq!(profile.degree_list()[0].0.index(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coupling;
pub mod patterns;
pub mod render;
pub mod temporal;

pub use coupling::{CouplingProfile, WeightedEdge};
pub use patterns::{PatternReport, PatternShape};
pub use temporal::TemporalProfile;
