//! The coupling strength matrix and coupling degree list (paper §3.1).

use serde::{Deserialize, Serialize};

use qpd_circuit::{Circuit, Qubit};

/// A weighted edge of the logical coupling graph: two logical qubits and
/// the number of two-qubit gates between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightedEdge {
    /// Lower-indexed endpoint.
    pub a: Qubit,
    /// Higher-indexed endpoint.
    pub b: Qubit,
    /// Number of two-qubit gate instances on this pair.
    pub weight: u32,
}

/// The profiling result for one quantum program: the logical coupling
/// graph as a symmetric strength matrix, plus derived views.
///
/// Constructed by [`CouplingProfile::of`]. Single-qubit gates,
/// initialization, and measurement are ignored; each two-qubit unitary
/// adds one to the entry of its (unordered) operand pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplingProfile {
    num_qubits: usize,
    /// Row-major symmetric matrix, `num_qubits * num_qubits` entries.
    matrix: Vec<u32>,
}

impl CouplingProfile {
    /// Profiles a circuit.
    ///
    /// Gates on three or more qubits must be decomposed first (paper §2.1
    /// assumes decomposed circuits); they are ignored here, matching the
    /// paper's profiling rule that only two-qubit gates count.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits();
        let mut matrix = vec![0u32; n * n];
        for (a, b) in circuit.two_qubit_pairs() {
            matrix[a.index() * n + b.index()] += 1;
            matrix[b.index() * n + a.index()] += 1;
        }
        CouplingProfile { num_qubits: n, matrix }
    }

    /// Builds a profile directly from weighted edges (used by tests and
    /// synthetic workloads).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= num_qubits` or is a
    /// self-loop.
    pub fn from_edges(num_qubits: usize, edges: &[(usize, usize, u32)]) -> Self {
        let mut matrix = vec![0u32; num_qubits * num_qubits];
        for &(a, b, w) in edges {
            assert!(a < num_qubits && b < num_qubits, "edge endpoint out of range");
            assert_ne!(a, b, "self-loops are not allowed");
            matrix[a * num_qubits + b] += w;
            matrix[b * num_qubits + a] += w;
        }
        CouplingProfile { num_qubits, matrix }
    }

    /// Number of logical qubits profiled.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of two-qubit gates between qubits `i` and `j` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn strength(&self, i: usize, j: usize) -> u32 {
        assert!(i < self.num_qubits && j < self.num_qubits, "index out of range");
        self.matrix[i * self.num_qubits + j]
    }

    /// The coupling degree of qubit `q`: the total number of two-qubit
    /// gates it participates in.
    pub fn degree(&self, q: usize) -> u32 {
        assert!(q < self.num_qubits, "index out of range");
        self.matrix[q * self.num_qubits..(q + 1) * self.num_qubits].iter().sum()
    }

    /// The coupling degree list: every qubit with its coupling degree,
    /// sorted descending (ties broken by ascending qubit index, making
    /// the design flow deterministic).
    pub fn degree_list(&self) -> Vec<(Qubit, u32)> {
        let mut list: Vec<(Qubit, u32)> =
            (0..self.num_qubits).map(|q| (Qubit::from(q), self.degree(q))).collect();
        list.sort_by(|(qa, da), (qb, db)| db.cmp(da).then(qa.cmp(qb)));
        list
    }

    /// The edges of the logical coupling graph (`a < b`, positive weight),
    /// ordered by ascending `(a, b)`.
    pub fn edges(&self) -> Vec<WeightedEdge> {
        let mut out = Vec::new();
        for a in 0..self.num_qubits {
            for b in a + 1..self.num_qubits {
                let w = self.strength(a, b);
                if w > 0 {
                    out.push(WeightedEdge { a: Qubit::from(a), b: Qubit::from(b), weight: w });
                }
            }
        }
        out
    }

    /// Qubits coupled to `q` by at least one two-qubit gate, ascending.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        (0..self.num_qubits).filter(|&j| j != q && self.strength(q, j) > 0).collect()
    }

    /// Total number of two-qubit gates in the program.
    pub fn total_two_qubit_gates(&self) -> u32 {
        self.matrix.iter().sum::<u32>() / 2
    }

    /// Number of distinct coupled pairs.
    pub fn edge_count(&self) -> usize {
        self.edges().len()
    }

    /// Whether the logical coupling graph is connected over the qubits
    /// that appear in at least one two-qubit gate. Isolated qubits (degree
    /// zero) are ignored.
    pub fn is_connected(&self) -> bool {
        let active: Vec<usize> = (0..self.num_qubits).filter(|&q| self.degree(q) > 0).collect();
        let Some(&start) = active.first() else {
            return true;
        };
        let mut seen = vec![false; self.num_qubits];
        let mut stack = vec![start];
        seen[start] = true;
        let mut count = 1;
        while let Some(q) = stack.pop() {
            for j in self.neighbors(q) {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == active.len()
    }

    /// The maximum entry of the strength matrix.
    pub fn max_strength(&self) -> u32 {
        self.matrix.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpd_circuit::Circuit;

    /// The example circuit of paper Figure 4: five logical qubits, edges
    /// q0-q4 (weight 2), q0-q1, q1-q4, q2-q4, q3-q4 (weight 1 each).
    pub fn figure4_circuit() -> Circuit {
        let mut c = Circuit::new(5);
        c.h(0).h(1);
        c.cx(0, 4).cx(1, 4).cx(0, 1).cx(2, 4).cx(0, 4).cx(3, 4);
        c.measure_all();
        c
    }

    #[test]
    fn figure4_matrix() {
        let p = CouplingProfile::of(&figure4_circuit());
        assert_eq!(p.strength(0, 4), 2);
        assert_eq!(p.strength(4, 0), 2);
        assert_eq!(p.strength(0, 1), 1);
        assert_eq!(p.strength(2, 4), 1);
        assert_eq!(p.strength(3, 4), 1);
        assert_eq!(p.strength(1, 2), 0);
        assert_eq!(p.total_two_qubit_gates(), 6);
    }

    #[test]
    fn figure4_degree_list() {
        let p = CouplingProfile::of(&figure4_circuit());
        let list = p.degree_list();
        let rendered: Vec<(usize, u32)> = list.iter().map(|(q, d)| (q.index(), *d)).collect();
        // Paper Figure 4 (d): q4:5, q0:3, q1:2, q2:1, q3:1.
        assert_eq!(rendered, vec![(4, 5), (0, 3), (1, 2), (2, 1), (3, 1)]);
    }

    #[test]
    fn single_qubit_gates_ignored() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).rz(0.3, 0).measure_all();
        let p = CouplingProfile::of(&c);
        assert_eq!(p.total_two_qubit_gates(), 0);
        assert_eq!(p.degree(0), 0);
    }

    #[test]
    fn symmetry() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 0).cz(2, 3);
        let p = CouplingProfile::of(&c);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(p.strength(i, j), p.strength(j, i));
            }
        }
        // Direction does not matter: cx(0,1) and cx(1,0) both count.
        assert_eq!(p.strength(0, 1), 2);
    }

    #[test]
    fn edges_sorted_and_positive() {
        let p = CouplingProfile::from_edges(4, &[(2, 3, 5), (0, 1, 1)]);
        let e = p.edges();
        assert_eq!(e.len(), 2);
        assert_eq!((e[0].a.index(), e[0].b.index(), e[0].weight), (0, 1, 1));
        assert_eq!((e[1].a.index(), e[1].b.index(), e[1].weight), (2, 3, 5));
    }

    #[test]
    fn neighbors_and_connectivity() {
        let p = CouplingProfile::from_edges(5, &[(0, 1, 1), (1, 2, 1)]);
        assert_eq!(p.neighbors(1), vec![0, 2]);
        assert!(p.is_connected()); // qubits 3, 4 are isolated and ignored
        let p = CouplingProfile::from_edges(5, &[(0, 1, 1), (2, 3, 1)]);
        assert!(!p.is_connected());
        assert!(CouplingProfile::of(&Circuit::new(3)).is_connected());
    }

    #[test]
    fn degree_ties_break_by_index() {
        let p = CouplingProfile::from_edges(4, &[(0, 1, 2), (2, 3, 2)]);
        let list = p.degree_list();
        let ids: Vec<usize> = list.iter().map(|(q, _)| q.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn from_edges_rejects_self_loops() {
        CouplingProfile::from_edges(2, &[(1, 1, 1)]);
    }

    #[test]
    fn max_strength() {
        let p = CouplingProfile::from_edges(3, &[(0, 1, 7), (1, 2, 3)]);
        assert_eq!(p.max_strength(), 7);
    }
}
